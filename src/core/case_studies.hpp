// §6 case studies: smart TVs (Fig. 7, Table 17) and local-network PKI (§6.2).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "devicesim/scenario.hpp"
#include "x509/validation.hpp"

namespace iotls::core {

/// Per-issuer scatter for one smart-TV vendor group (Fig. 7).
struct IssuerValidityPoints {
  std::string issuer;
  bool issuer_public = true;
  std::vector<std::int64_t> validity_days;
  std::size_t in_ct = 0;
  std::size_t total = 0;
};

/// Table 17 classification for one vendor group.
struct InvalidChainRows {
  std::vector<std::string> incomplete_chain;
  std::vector<std::string> untrusted_root;
  std::vector<std::string> expired;
  std::vector<std::string> self_signed;
};

struct SmartTvGroup {
  std::string group;  // "Amazon" or "Roku"
  std::vector<IssuerValidityPoints> issuers;
  InvalidChainRows invalid;
  std::size_t servers = 0;
};

/// The §6.1 study. The lab capture is exercised end-to-end: synthetic TV
/// traffic is framed into real pcap bytes, read back, and fingerprinted; the
/// TV-visited servers are then probed and their chains validated.
struct SmartTvStudy {
  SmartTvGroup amazon;
  SmartTvGroup roku;
  std::size_t pcap_packets = 0;
  std::size_t pcap_hellos = 0;  // ClientHellos recovered from the capture
  std::size_t pcap_fingerprints = 0;
};

SmartTvStudy smart_tv_study(const devicesim::SimWorld& world,
                            const devicesim::ServerUniverse& universe,
                            const corpus::LibraryCorpus& corpus, std::int64_t now);

/// One observed local-network TLS connection (§6.2).
struct LocalObservation {
  std::string client;
  std::string server;
  std::uint16_t port = 0;
  std::uint16_t tls_version = 0x0303;
  bool certificates_visible = false;  // TLS 1.3 encrypts the Certificate msg
  std::string leaf_common_name;
  std::string root_common_name;
  std::int64_t validity_days = 0;
  bool root_in_client_store = false;
  bool in_ct = false;
  std::size_t chain_length = 0;
};

struct LocalPkiStudy {
  std::vector<LocalObservation> observations;
  std::size_t long_validity_roots = 0;  // roots valid for 20+ years
};

LocalPkiStudy local_network_study();

}  // namespace iotls::core

#include "core/sharing.hpp"

#include <algorithm>

#include "tls/ciphersuite.hpp"
#include "util/strings.hpp"

namespace iotls::core {

std::vector<VendorSimilarity> vendor_similarities(const ClientDataset& ds,
                                                  double threshold) {
  std::vector<std::pair<std::string, const std::set<std::string>*>> vendors;
  for (const auto& [vendor, fps] : ds.vendor_fps()) vendors.emplace_back(vendor, &fps);

  std::vector<VendorSimilarity> out;
  for (std::size_t i = 0; i < vendors.size(); ++i) {
    for (std::size_t j = i + 1; j < vendors.size(); ++j) {
      const auto& a = *vendors[i].second;
      const auto& b = *vendors[j].second;
      std::size_t inter = 0;
      for (const std::string& key : a) inter += b.count(key);
      if (inter == 0) continue;
      std::size_t uni = a.size() + b.size() - inter;
      VendorSimilarity sim;
      sim.vendor_a = vendors[i].first;
      sim.vendor_b = vendors[j].first;
      sim.jaccard = static_cast<double>(inter) / static_cast<double>(uni);
      sim.overlap_coefficient =
          static_cast<double>(inter) / static_cast<double>(std::min(a.size(), b.size()));
      if (sim.jaccard >= threshold) out.push_back(std::move(sim));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const VendorSimilarity& x, const VendorSimilarity& y) {
              return x.jaccard > y.jaccard;
            });
  return out;
}

std::vector<SimilarityBucket> bucket_similarities(
    const std::vector<VendorSimilarity>& pairs) {
  std::vector<SimilarityBucket> buckets = {
      {1.0, 1.01, {}}, {0.7, 1.0, {}}, {0.4, 0.7, {}}, {0.3, 0.4, {}}, {0.2, 0.3, {}}};
  for (const VendorSimilarity& pair : pairs) {
    for (SimilarityBucket& bucket : buckets) {
      if (pair.jaccard >= bucket.lo && pair.jaccard < bucket.hi) {
        bucket.pairs.push_back(pair);
        break;
      }
    }
  }
  return buckets;
}

ServerTieReport server_tied_fingerprints(const ClientDataset& ds,
                                         const corpus::LibraryCorpus& corpus) {
  ServerTieReport report;
  report.total_snis = ds.sni_fps().size();

  // For a fingerprint to be "tied" to a server, it must be server-specific:
  // the ONLY fingerprint those devices present to this server, observed
  // from multiple devices, and not matching any standard library.
  std::map<std::string, ServerTiedFingerprint> rows;  // key: sld|fp
  for (const auto& [sni, fps] : ds.sni_fps()) {
    if (fps.size() != 1) continue;  // not server-specific
    const std::string& fp_key = *fps.begin();
    const tls::Fingerprint& fp = ds.fingerprints().at(fp_key);
    if (corpus.best_match(fp) != nullptr) continue;  // standard library
    // The fingerprint must appear at few servers overall (tied to the
    // application behind this server, not a vendor-wide base stack).
    const auto& fp_snis = ds.fp_snis().at(fp_key);
    if (fp_snis.size() > 8) continue;
    const auto& devices = ds.sni_devices().at(sni);
    if (devices.size() < 2) continue;  // exclude single-device outliers
    ++report.tied_snis;

    std::string sld = second_level_domain(sni);
    ServerTiedFingerprint& row = rows[sld + "|" + fp_key];
    row.sld = sld;
    row.fp_key = fp_key;
    row.fqdns.insert(sni);
    row.vulnerable_tags = tls::list_vulnerable_components(fp.cipher_suites);
    for (const std::string& d : devices) row.devices.insert(d);
    for (const std::string& v : ds.sni_vendors().at(sni)) row.vendors.insert(v);
  }

  for (auto& [key, row] : rows) {
    if (row.vendors.size() < 2) continue;  // Table 5 lists cross-vendor rows
    report.cross_vendor_rows.push_back(row);
  }
  std::sort(report.cross_vendor_rows.begin(), report.cross_vendor_rows.end(),
            [](const ServerTiedFingerprint& a, const ServerTiedFingerprint& b) {
              return a.devices.size() > b.devices.size();
            });
  return report;
}

}  // namespace iotls::core

#include "core/sharing.hpp"

#include <algorithm>

#include "tls/ciphersuite.hpp"
#include "util/strings.hpp"

namespace iotls::core {

std::vector<VendorSimilarity> vendor_similarities(const ClientDataset& ds,
                                                  double threshold) {
  const DatasetIndex& ix = ds.index();
  // Vendor order and the pair enumeration mirror the seed's std::map walk
  // (lexicographic), so output rows land in the same sequence.
  const std::vector<std::uint32_t>& order = ix.vendors_by_name();

  std::vector<VendorSimilarity> out;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Bitset& bits_a = ix.vendor_fp_bits(order[i]);
    std::size_t size_a = ix.vendor_fps()[order[i]].size();
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      std::size_t inter = Bitset::and_count(bits_a, ix.vendor_fp_bits(order[j]));
      if (inter == 0) continue;
      std::size_t size_b = ix.vendor_fps()[order[j]].size();
      std::size_t uni = size_a + size_b - inter;
      VendorSimilarity sim;
      sim.vendor_a = ix.vendors().str(order[i]);
      sim.vendor_b = ix.vendors().str(order[j]);
      sim.jaccard = static_cast<double>(inter) / static_cast<double>(uni);
      sim.overlap_coefficient = static_cast<double>(inter) /
                                static_cast<double>(std::min(size_a, size_b));
      if (sim.jaccard >= threshold) out.push_back(std::move(sim));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const VendorSimilarity& x, const VendorSimilarity& y) {
              return x.jaccard > y.jaccard;
            });
  return out;
}

std::vector<SimilarityBucket> bucket_similarities(
    const std::vector<VendorSimilarity>& pairs) {
  std::vector<SimilarityBucket> buckets = {
      {1.0, 1.01, {}}, {0.7, 1.0, {}}, {0.4, 0.7, {}}, {0.3, 0.4, {}}, {0.2, 0.3, {}}};
  for (const VendorSimilarity& pair : pairs) {
    for (SimilarityBucket& bucket : buckets) {
      if (pair.jaccard >= bucket.lo && pair.jaccard < bucket.hi) {
        bucket.pairs.push_back(pair);
        break;
      }
    }
  }
  return buckets;
}

ServerTieReport server_tied_fingerprints(const ClientDataset& ds,
                                         const corpus::LibraryCorpus& corpus) {
  const DatasetIndex& ix = ds.index();
  ServerTieReport report;
  report.total_snis = ix.snis().size();

  // For a fingerprint to be "tied" to a server, it must be server-specific:
  // the ONLY fingerprint those devices present to this server, observed
  // from multiple devices, and not matching any standard library.
  std::map<std::string, ServerTiedFingerprint> rows;  // key: sld|fp
  for (std::uint32_t sni : ix.snis_by_name()) {
    const PostingList& fps = ix.sni_fps()[sni];
    if (fps.size() != 1) continue;  // not server-specific
    std::uint32_t f = fps.front();
    const tls::Fingerprint& fp = ix.fp_value(f);
    if (corpus.best_match(fp) != nullptr) continue;  // standard library
    // The fingerprint must appear at few servers overall (tied to the
    // application behind this server, not a vendor-wide base stack).
    if (ix.fp_snis()[f].size() > 8) continue;
    const PostingList& devices = ix.sni_devices()[sni];
    if (devices.size() < 2) continue;  // exclude single-device outliers
    ++report.tied_snis;

    const std::string& sni_name = ix.snis().str(sni);
    const std::string& fp_key = ix.fps().str(f);
    std::string sld = second_level_domain(sni_name);
    auto [it, inserted] = rows.try_emplace(sld + "|" + fp_key);
    ServerTiedFingerprint& row = it->second;
    if (inserted) {
      row.sld = std::move(sld);
      row.fp_key = fp_key;
      row.vulnerable_tags = tls::list_vulnerable_components(fp.cipher_suites);
    }
    row.fqdns.insert(sni_name);
    for (std::uint32_t d : devices) row.devices.insert(ix.devices().str(d));
    for (std::uint32_t v : ix.sni_vendors()[sni]) row.vendors.insert(ix.vendors().str(v));
  }

  for (auto& [key, row] : rows) {
    if (row.vendors.size() < 2) continue;  // Table 5 lists cross-vendor rows
    report.cross_vendor_rows.push_back(row);
  }
  std::sort(report.cross_vendor_rows.begin(), report.cross_vendor_rows.end(),
            [](const ServerTiedFingerprint& a, const ServerTiedFingerprint& b) {
              return a.devices.size() > b.devices.size();
            });
  return report;
}

}  // namespace iotls::core

// §5.2: certificate issuers — public-trust vs private CAs, Fig. 5 matrix.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/cert_dataset.hpp"

namespace iotls::core {

/// Fig. 5: for each device vendor, the distribution of leaf-certificate
/// issuers across the servers its devices visit (columns sum to 1).
struct IssuerMatrix {
  /// vendor -> issuer organization -> ratio.
  std::map<std::string, std::map<std::string, double>> ratio;
  /// issuer organization -> is public-trust CA.
  std::map<std::string, bool> issuer_public;
  /// issuers ordered by number of issued leaves, descending (y-axis order).
  std::vector<std::string> issuer_order;
  /// vendors ordered by prevalence of public-trust CAs, descending.
  std::vector<std::string> vendor_order;
};

IssuerMatrix issuer_matrix(const CertDataset& certs,
                           const std::map<std::string, bool>& issuer_is_public);

/// §5.2 aggregates.
struct IssuerReport {
  std::size_t issuer_organizations = 0;
  std::size_t leaves = 0;
  std::size_t private_leaves = 0;              // signed by private CAs
  double private_ratio = 0;
  std::map<std::string, double> issuer_share;  // org -> share of all leaves
  std::set<std::string> public_only_vendors;   // devices only meet public CAs
  std::set<std::string> self_signing_vendors;  // vendor-signed servers visited
                                               // by the vendor's own devices
  std::set<std::string> vendor_only_vendors;   // devices ONLY visit
                                               // vendor-signed servers
};

IssuerReport issuer_report(const CertDataset& certs,
                           const std::map<std::string, bool>& issuer_is_public);

/// The issuer organization a device vendor signs under (e.g. vendor
/// "Samsung" signs as "Samsung Electronics"); empty when the vendor is not
/// a known private CA.
std::string issuer_org_for_vendor(const std::string& vendor);

}  // namespace iotls::core

#include "core/cert_index.hpp"

#include <algorithm>

#include "core/cert_dataset.hpp"

namespace iotls::core {

namespace {

/// Append `id` to the posting list at `row`, growing the table as new row
/// ids appear (rows are interned densely, so growth is amortized).
void append(std::vector<PostingList>& lists, std::uint32_t row,
            std::uint32_t id) {
  if (row >= lists.size()) lists.resize(row + 1);
  lists[row].push_back(id);
}

void sort_unique_all(std::vector<PostingList>& lists) {
  for (PostingList& list : lists) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
}

}  // namespace

void CertIndex::reserve(std::size_t expected_records) {
  snis_.reserve(expected_records);
  record_leaf_.reserve(expected_records);
  record_fp_.reserve(expected_records);
  sni_devices_.reserve(expected_records);
  sni_vendors_.reserve(expected_records);
}

void CertIndex::record(const SniRecord& rec,
                       const std::string& leaf_fingerprint) {
  const std::uint32_t sni = snis_.intern(rec.sni);
  for (const std::string& device : rec.devices) {
    append(sni_devices_, sni, devices_.intern(device));
  }
  for (const std::string& vendor : rec.vendors) {
    append(sni_vendors_, sni, vendors_.intern(vendor));
  }
  for (const std::string& user : rec.users) users_.intern(user);

  if (!rec.reachable || rec.chain.empty()) {
    record_leaf_.push_back(kNone);
    record_fp_.push_back(kNone);
    return;
  }

  const x509::Certificate& cert = rec.chain.front();
  const std::uint32_t fp = fps_.intern(leaf_fingerprint);
  if (fp == fp_issuer_.size()) {  // first record serving this fingerprint
    fp_issuer_.push_back(issuers_.intern(cert.issuer.organization));
    fp_validity_days_.push_back(cert.validity_days());
  }

  // Leaf identity: SPKI + serial (the paper's certificate dedup key).
  const std::uint32_t spki = spkis_.intern(cert.subject_key_id);
  std::string identity = cert.subject_key_id;
  identity += '\x1f';
  identity += std::to_string(cert.serial);
  const std::uint32_t leaf = leaf_ids_.intern(identity);
  if (leaf == leaf_certs_.size()) {  // first sighting of this certificate
    leaf_certs_.push_back(cert);
    leaf_fp_.push_back(fp);
    leaf_issuer_.push_back(issuers_.intern(cert.issuer.organization));
    leaf_spki_.push_back(spki);
  }
  record_leaf_.push_back(leaf);
  record_fp_.push_back(fp);

  append(leaf_servers_, leaf, sni);
  for (const std::string& ip : rec.server_ips) {
    append(leaf_ips_, leaf, ips_.intern(ip));
  }
  const std::uint32_t issuer = leaf_issuer_[leaf];
  append(issuer_leaves_, issuer, leaf);
  for (const std::string& vendor : rec.vendors) {
    append(vendor_leaves_, vendors_.intern(vendor), leaf);
  }
}

void CertIndex::finalize() {
  sort_unique_all(sni_devices_);
  sort_unique_all(sni_vendors_);
  sort_unique_all(leaf_servers_);
  sort_unique_all(leaf_ips_);
  sort_unique_all(vendor_leaves_);
  sort_unique_all(issuer_leaves_);
  // Posting tables are row-indexed by interned ids; pad to the full domain
  // so accessors never index past the end for rows that gained no postings.
  sni_devices_.resize(snis_.size());
  sni_vendors_.resize(snis_.size());
  leaf_servers_.resize(leaf_certs_.size());
  leaf_ips_.resize(leaf_certs_.size());
  vendor_leaves_.resize(vendors_.size());
  issuer_leaves_.resize(issuers_.size());
}

}  // namespace iotls::core

// Dense-id interning and set primitives for the §4/§5 analysis core.
//
// Every analysis in core/ joins fingerprints, vendors, devices, SNIs and
// users. The seed implementation keyed everything by std::string and paid a
// full key compare (JA3-style keys run to hundreds of bytes) on every set
// operation. The interner maps each distinct string to a dense uint32 id —
// insertion-ordered, so ids are deterministic for a deterministic input
// order — and the analyses run on sorted id posting lists and fixed-width
// bitsets instead. String views are materialized only at the report edge.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace iotls::core {

/// String <-> dense uint32 id map. Ids are assigned in first-seen order, so
/// an input processed in deterministic order (the sequential index fold)
/// yields the same ids on every run and at every --jobs level.
class Interner {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Id of `s`, interning it if unseen.
  std::uint32_t intern(std::string_view s);

  /// Id of `s`, or kNone when it was never interned.
  std::uint32_t find(std::string_view s) const;

  /// The string behind an id (valid for the interner's lifetime; storage is
  /// reference-stable, so views handed out earlier never dangle).
  const std::string& str(std::uint32_t id) const { return strings_[id]; }

  std::uint32_t size() const { return static_cast<std::uint32_t>(strings_.size()); }
  bool empty() const { return strings_.empty(); }
  void reserve(std::size_t n) { ids_.reserve(n); }

  /// All ids, permuted into lexicographic string order — the iteration
  /// order of the seed's std::map indexes, which report output depends on.
  std::vector<std::uint32_t> ids_by_string() const;

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };

  std::deque<std::string> strings_;  // deque: stable references across growth
  std::unordered_map<std::string_view, std::uint32_t, Hash, Eq> ids_;
};

/// Fixed-width bitset over a dense id domain, sized once at finalize time.
/// Supports the one operation the Jaccard analyses need to be fast:
/// intersection cardinality via word-wise AND + popcount.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  std::size_t size() const { return bits_; }

  /// Number of set bits.
  std::size_t count() const;

  /// |a AND b| without materializing the intersection.
  static std::size_t and_count(const Bitset& a, const Bitset& b);

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Sorted-unique posting list over dense ids.
using PostingList = std::vector<std::uint32_t>;

/// |a ∩ b| of two sorted-unique lists (linear merge with galloping skip for
/// lopsided sizes).
std::size_t intersect_count(const PostingList& a, const PostingList& b);

}  // namespace iotls::core

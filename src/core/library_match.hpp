// §4.1: matching device fingerprints against the known-library corpus.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "corpus/corpus.hpp"

namespace iotls::core {

/// One matched fingerprint.
struct LibraryMatch {
  std::string fp_key;
  std::string library;          // best match ("highest version", §4.1)
  corpus::Family family = corpus::Family::kOpenSsl;
  bool supported = true;        // still supported at the reference day
  std::size_t device_count = 0; // devices exhibiting this fingerprint
};

/// Aggregate §4.1 results.
struct LibraryMatchReport {
  std::size_t total_fingerprints = 0;
  std::vector<LibraryMatch> matches;      // fingerprints with an exact match
  std::size_t matched_libraries = 0;      // distinct best-match libraries
  std::size_t unsupported_libraries = 0;  // of those, unsupported at ref day
  std::map<corpus::Family, std::size_t> by_family;

  double match_ratio() const {
    return total_fingerprints == 0
               ? 0.0
               : static_cast<double>(matches.size()) / total_fingerprints;
  }
};

/// Run the matching at a reference day (the paper uses "as of 2020").
/// `jobs` > 1 evaluates corpus lookups on a worker pool (0 = hardware
/// concurrency); metrics and report rows are folded sequentially in
/// fingerprint-key order, so the report is identical to the jobs=1 run.
LibraryMatchReport match_against_corpus(const ClientDataset& ds,
                                        const corpus::LibraryCorpus& corpus,
                                        std::int64_t reference_day,
                                        int jobs = 1);

}  // namespace iotls::core

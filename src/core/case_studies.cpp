#include "core/case_studies.hpp"

#include <algorithm>

#include "devicesim/stacks.hpp"
#include "net/prober.hpp"
#include "pcap/flow.hpp"
#include "tls/fingerprint.hpp"
#include "tls/record.hpp"
#include "util/dates.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace iotls::core {

namespace {

/// Frame a ClientHello's record bytes into Ethernet/IP/TCP packets.
std::vector<pcap::PcapPacket> frame_flight(const Bytes& records,
                                           std::uint32_t device_index,
                                           std::uint32_t ts) {
  pcap::TcpSegment seg;
  seg.src_mac.bytes = {0x02, 0x00, 0x00, 0x00, 0x00,
                       static_cast<std::uint8_t>(device_index)};
  seg.dst_mac.bytes = {0x02, 0xff, 0x00, 0x00, 0x00, 0x01};
  seg.src_ip = pcap::Ipv4Addr::from_string(
      "192.168.1." + std::to_string(10 + device_index % 200));
  seg.dst_ip = pcap::Ipv4Addr::from_string("93.184.216.34");
  seg.src_port = static_cast<std::uint16_t>(40000 + device_index);
  seg.dst_port = 443;
  seg.seq = 1000;
  seg.flags = pcap::kPsh | pcap::kAck;
  seg.payload = records;

  pcap::PcapPacket packet;
  packet.ts_sec = ts;
  packet.frame = pcap::encode_frame(seg);
  return {packet};
}

SmartTvGroup analyze_group(const std::string& group,
                           const std::vector<std::string>& snis,
                           const devicesim::SimWorld& world, std::int64_t now) {
  SmartTvGroup out;
  out.group = group;
  net::TlsProber prober(world.internet);

  std::map<std::string, IssuerValidityPoints> issuers;
  for (const std::string& sni : snis) {
    net::ProbeResult probe = prober.probe(sni, net::VantagePoint::kNewYork);
    if (!probe.reachable || probe.chain.empty()) continue;
    ++out.servers;
    const x509::Certificate& leaf = probe.chain.front();

    IssuerValidityPoints& pts = issuers[leaf.issuer.organization];
    pts.issuer = leaf.issuer.organization;
    auto pub = world.issuer_is_public.find(leaf.issuer.organization);
    pts.issuer_public = pub == world.issuer_is_public.end() ? true : pub->second;
    pts.validity_days.push_back(leaf.validity_days());
    ++pts.total;
    if (world.ct_index.logged(leaf.fingerprint())) ++pts.in_ct;

    x509::ValidationResult v =
        x509::validate_chain(probe.chain, sni, world.trust, world.keys, now);
    std::string domain = second_level_domain(sni);
    switch (v.status) {
      case x509::ChainStatus::kIncompleteChain:
        out.invalid.incomplete_chain.push_back(domain);
        break;
      case x509::ChainStatus::kUntrustedRoot:
        out.invalid.untrusted_root.push_back(domain);
        break;
      case x509::ChainStatus::kSelfSigned:
        out.invalid.self_signed.push_back(domain);
        break;
      default:
        break;
    }
    if (v.expired) out.invalid.expired.push_back(domain);
  }
  for (auto& [org, pts] : issuers) out.issuers.push_back(std::move(pts));
  std::sort(out.issuers.begin(), out.issuers.end(),
            [](const IssuerValidityPoints& a, const IssuerValidityPoints& b) {
              return a.total > b.total;
            });
  return out;
}

}  // namespace

SmartTvStudy smart_tv_study(const devicesim::SimWorld& world,
                            const devicesim::ServerUniverse& universe,
                            const corpus::LibraryCorpus& corpus, std::int64_t now) {
  SmartTvStudy study;

  // ---- Lab capture: two TVs talking to their clouds, captured to pcap.
  devicesim::TlsStack fire_tv;
  fire_tv.name = "lab:fire-tv";
  Rng rng(fnv1a64("smart-tv-lab"));
  fire_tv.config = devicesim::mutate_era(corpus.era("openssl-1.0.2"), rng, 0.4);
  devicesim::TlsStack roku_tv;
  roku_tv.name = "lab:roku-tv";
  roku_tv.config = devicesim::mutate_era(corpus.era("openssl-1.0.1"), rng, 0.5);

  std::vector<std::string> amazon_snis;
  for (const std::string& sni : universe.fqdns_with_tag("vendor:Amazon")) {
    std::string sld = second_level_domain(sni);
    // §6.1 excludes amazonaws.com / amazonvideo.com (Roku devices visit them).
    if (sld == "amazonaws.com" || sld == "amazonvideo.com") continue;
    amazon_snis.push_back(sni);
  }
  std::vector<std::string> roku_snis = universe.fqdns_with_tag("vendor:Roku");
  std::vector<std::string> tv_snis = universe.fqdns_with_tag("tv");

  std::vector<pcap::PcapPacket> capture;
  std::uint32_t ts = 1561000000;
  auto record_flight = [&](const devicesim::TlsStack& stack, const std::string& sni,
                           std::uint32_t device_index) {
    tls::ClientHello hello = devicesim::hello_from_stack(stack, sni, device_index);
    Bytes msg = hello.encode();
    Bytes records = tls::encode_records(tls::ContentType::kHandshake, 0x0301,
                                        BytesView(msg.data(), msg.size()));
    for (pcap::PcapPacket& p : frame_flight(records, device_index, ts++)) {
      capture.push_back(std::move(p));
    }
  };
  std::uint32_t idx = 0;
  for (const std::string& sni : amazon_snis) record_flight(fire_tv, sni, idx++);
  for (const std::string& sni : roku_snis) record_flight(roku_tv, sni, idx++);
  for (std::size_t i = 0; i < tv_snis.size() && i < 12; ++i) {
    record_flight(i % 2 == 0 ? fire_tv : roku_tv, tv_snis[i], idx++);
  }

  // Round-trip the capture through the real pcap format, then recover
  // ClientHellos from the reassembled flows.
  Bytes pcap_bytes = pcap::write_pcap(capture);
  std::vector<pcap::PcapPacket> reread =
      pcap::read_pcap(BytesView(pcap_bytes.data(), pcap_bytes.size()));
  study.pcap_packets = reread.size();
  auto hellos = pcap::extract_client_hellos(reread);
  study.pcap_hellos = hellos.size();
  std::set<std::string> fps;
  for (const pcap::CapturedClientHello& captured : hellos) {
    fps.insert(tls::fingerprint_of(captured.hello).key());
  }
  study.pcap_fingerprints = fps.size();

  // ---- Server-side analysis per vendor group (Fig. 7 / Table 17).
  // The Amazon/Roku groups also include the third-party TV app servers each
  // TV contacted in the capture.
  std::vector<std::string> amazon_group = amazon_snis;
  std::vector<std::string> roku_group = roku_snis;
  for (std::size_t i = 0; i < tv_snis.size() && i < 12; ++i) {
    (i % 2 == 0 ? amazon_group : roku_group).push_back(tv_snis[i]);
  }
  study.amazon = analyze_group("Amazon", amazon_group, world, now);
  study.roku = analyze_group("Roku", roku_group, world, now);
  return study;
}

LocalPkiStudy local_network_study() {
  LocalPkiStudy study;

  const std::int64_t lab_day = days(2022, 6, 1);

  // The local devices' key material (§6.2 observations).
  // Amazon Echo: single self-signed cert, CN = its IP, 1-year validity.
  auto echo = x509::CertificateAuthority::make_root(
      "192.168.1.23", "Amazon", x509::CaKind::kPrivate, lab_day - 30,
      lab_day - 30 + 365);

  // Google Cast PKI: "Cast Root CA" -> per-product intermediates with 20-22
  // year validity -> per-device leaves named by serial number.
  auto cast_root = x509::CertificateAuthority::make_root(
      "Cast Root CA", "Google", x509::CaKind::kPrivate, days(2014, 1, 1),
      days(2044, 1, 1));
  auto chromecast_ica = cast_root.subordinate("Chromecast ICA 12", days(2015, 3, 1),
                                              days(2015, 3, 1) + 22 * 365);
  auto home_ica = cast_root.subordinate("Chromecast ICA 16 (Audio Assist 4)",
                                        days(2016, 9, 1),
                                        days(2016, 9, 1) + 20 * 365);

  x509::IssueRequest req;
  req.subject.common_name = "8d2e9f0a1b3c4d5e";  // serial-number CN
  req.not_before = days(2018, 1, 1);
  req.not_after = days(2038, 1, 1);
  x509::Certificate chromecast_leaf = chromecast_ica.issue(req);
  req.subject.common_name = "f00ddeadbeef1234";
  x509::Certificate home_leaf = home_ica.issue(req);

  // Client trust stores: neither Android (Pixel) nor macOS carries the Cast
  // Root CA; CT contains none of these certificates.
  x509::TrustStoreSet android_store, macos_store;
  android_store.add(x509::TrustStore("android"));
  macos_store.add(x509::TrustStore("macos"));
  ct::CtIndex empty_ct;

  struct Link {
    const char* client;
    const char* server;
    std::uint16_t port;
    std::uint16_t version;
    std::vector<x509::Certificate> chain;
    const x509::TrustStoreSet* store;
  };
  std::vector<Link> links = {
      {"Fire TV", "Echo", 55443, 0x0303, {echo.certificate()}, &android_store},
      {"Google Home", "Chromecast", 10101, 0x0303,
       {chromecast_leaf, chromecast_ica.certificate()}, &android_store},
      {"Pixel", "Chromecast", 8443, 0x0303,
       {chromecast_leaf, chromecast_ica.certificate()}, &android_store},
      {"MacBook", "Chromecast", 32245, 0x0304, {}, &macos_store},  // TLS 1.3
      {"Pixel", "Google Home", 8443, 0x0303,
       {home_leaf, home_ica.certificate()}, &android_store},
  };

  for (const Link& link : links) {
    LocalObservation obs;
    obs.client = link.client;
    obs.server = link.server;
    obs.port = link.port;
    obs.tls_version = link.version;
    obs.certificates_visible = link.version < 0x0304;  // TLS 1.3 encrypts them
    if (obs.certificates_visible && !link.chain.empty()) {
      const x509::Certificate& leaf = link.chain.front();
      const x509::Certificate& top = link.chain.back();
      obs.leaf_common_name = leaf.subject.common_name;
      obs.root_common_name =
          top.self_signed() ? top.subject.common_name : top.issuer.common_name;
      obs.validity_days = top.validity_days();
      obs.chain_length = link.chain.size();
      obs.root_in_client_store = link.store->contains_key(top.subject_key_id) ||
                                 link.store->contains_key(top.authority_key_id);
      obs.in_ct = empty_ct.logged(leaf.fingerprint());
      if (obs.validity_days >= 20 * 365) ++study.long_validity_roots;
    }
    study.observations.push_back(std::move(obs));
  }
  return study;
}

}  // namespace iotls::core

// Longitudinal analysis — the paper's stated future work (§7): "additional
// measurements that delve deeper into the change of TLS behaviors
// potentially resulting from maintenance and updates during the device's
// life cycle".
//
// Given the timestamped event stream, detect per-device stack replacements
// (a fingerprint that disappears while a new one appears) and measure the
// TLS-version mix over time (App. B.3.2 reports no trend).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/dataset.hpp"

namespace iotls::core {

/// One device's fingerprint timeline verdict.
struct DeviceTimeline {
  std::string device_id;
  std::string vendor;
  std::set<std::string> early_only;  // fps seen only in the first half
  std::set<std::string> late_only;   // fps seen only in the second half
  bool observed_in_both_halves = false;
  /// A vanished fingerprint has a successor covering the same servers.
  bool successor_found = false;

  /// A stack replacement: something vanished, something new appeared, and
  /// the newcomer serves the vanished stack's role (SNI overlap).
  bool stack_replaced() const {
    return observed_in_both_halves && !early_only.empty() &&
           !late_only.empty() && successor_found;
  }
};

/// Monthly TLS-version share (App. B.3.2's trend check).
struct MonthlyVersionShare {
  std::int64_t month_start = 0;  // day
  std::size_t events = 0;
  std::map<std::uint16_t, double> share;  // version -> fraction
};

struct LongitudinalReport {
  std::vector<DeviceTimeline> timelines;        // devices seen in both halves
  std::size_t devices_observed_both_halves = 0;
  std::size_t devices_with_replacement = 0;
  std::map<std::string, std::size_t> replacements_by_vendor;
  std::vector<MonthlyVersionShare> monthly_versions;

  /// Max absolute change in the TLS 1.2 share between consecutive months —
  /// small values mean "no trend" (the paper's finding).
  double max_monthly_tls12_swing = 0;
};

/// Analyse the event stream between `start` and `end` (days).
LongitudinalReport longitudinal_analysis(const ClientDataset& ds,
                                         std::int64_t start, std::int64_t end);

}  // namespace iotls::core

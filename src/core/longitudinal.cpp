#include "core/longitudinal.hpp"

#include <algorithm>
#include <cmath>

namespace iotls::core {

LongitudinalReport longitudinal_analysis(const ClientDataset& ds,
                                         std::int64_t start, std::int64_t end) {
  LongitudinalReport report;
  const std::int64_t midpoint = start + (end - start) / 2;

  // Per device: fingerprints by half, plus per-fingerprint SNI sets so a
  // "replacement" means a *successor for the same role* — the new
  // fingerprint talks to servers the vanished one talked to. Without the
  // overlap requirement, rare one-off stacks that happen to land in a
  // single half masquerade as updates.
  std::map<std::string, std::pair<std::set<std::string>, std::set<std::string>>> halves;
  std::map<std::string, std::map<std::string, std::set<std::string>>> device_fp_snis;
  for (const ParsedEvent& e : ds.events()) {
    if (e.day < start || e.day > end) continue;
    auto& [early, late] = halves[e.device_id];
    (e.day < midpoint ? early : late).insert(e.fp_key);
    device_fp_snis[e.device_id][e.fp_key].insert(e.sni);
  }
  for (const auto& [device, sets] : halves) {
    const auto& [early, late] = sets;
    if (early.empty() || late.empty()) continue;  // not observed in both halves
    DeviceTimeline timeline;
    timeline.device_id = device;
    timeline.vendor = ds.device_vendor().at(device);
    timeline.observed_in_both_halves = true;
    ++report.devices_observed_both_halves;
    for (const std::string& fp : early) {
      if (late.count(fp) == 0) timeline.early_only.insert(fp);
    }
    for (const std::string& fp : late) {
      if (early.count(fp) == 0) timeline.late_only.insert(fp);
    }

    // Successor check: some vanished fingerprint and some new fingerprint
    // share at least one SNI on this device.
    const auto& fp_snis = device_fp_snis[device];
    for (const std::string& gone : timeline.early_only) {
      for (const std::string& fresh : timeline.late_only) {
        for (const std::string& sni : fp_snis.at(gone)) {
          if (fp_snis.at(fresh).count(sni) > 0) timeline.successor_found = true;
        }
      }
    }
    if (timeline.stack_replaced()) {
      ++report.devices_with_replacement;
      ++report.replacements_by_vendor[timeline.vendor];
    }
    report.timelines.push_back(std::move(timeline));
  }

  // Monthly version mix.
  std::map<std::int64_t, std::map<std::uint16_t, std::size_t>> months;
  for (const ParsedEvent& e : ds.events()) {
    if (e.day < start || e.day > end) continue;
    std::int64_t month = start + ((e.day - start) / 30) * 30;
    ++months[month][e.fp.version];
  }
  double prev_tls12 = -1;
  for (const auto& [month, versions] : months) {
    MonthlyVersionShare share;
    share.month_start = month;
    for (const auto& [version, count] : versions) share.events += count;
    if (share.events == 0) continue;
    for (const auto& [version, count] : versions) {
      share.share[version] =
          static_cast<double>(count) / static_cast<double>(share.events);
    }
    double tls12 = share.share.count(0x0303) ? share.share.at(0x0303) : 0;
    if (prev_tls12 >= 0) {
      report.max_monthly_tls12_swing =
          std::max(report.max_monthly_tls12_swing, std::abs(tls12 - prev_tls12));
    }
    prev_tls12 = tls12;
    report.monthly_versions.push_back(std::move(share));
  }
  return report;
}

}  // namespace iotls::core

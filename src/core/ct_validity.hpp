// §5.4: Certificate Transparency logging vs validity periods — Fig. 6,
// Table 9 (Netflix), Fig. 13 (CT vs private-issuer chains).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/cert_dataset.hpp"
#include "core/chains.hpp"

namespace iotls::core {

/// Fig. 6 point categories ("chain status" colours).
enum class ChainClass {
  kPublicLeafPublicRoot,   // blue
  kPrivateLeafPublicRoot,  // yellow (e.g. Netflix short-lived)
  kPrivateLeafPrivateRoot, // orange
};

std::string chain_class_name(ChainClass c);

/// One Fig. 6 point: a {server, leaf, vendor} tuple.
struct CtPoint {
  std::string sni;
  std::string vendor;
  std::string leaf_fingerprint;
  std::string leaf_issuer;
  std::int64_t validity_days = 0;
  ChainClass chain_class = ChainClass::kPublicLeafPublicRoot;
  bool in_ct = false;
};

struct CtReport {
  std::vector<CtPoint> points;       // all {server, leaf, vendor} tuples
  std::size_t tuples = 0;

  // Aggregates.
  std::size_t public_leaves = 0;
  std::size_t public_leaves_in_ct = 0;
  std::vector<CtPoint> public_not_logged;    // the 8 anomalies of §5.4
  std::size_t private_leaves = 0;
  std::size_t private_leaves_in_ct = 0;      // paper finds 0
  /// Of vendor-signed (private) distinct leaves: fraction with validity > 5y.
  double private_long_validity_ratio = 0;
  /// Max validity of a public leaf vs typical private validity (Fig. 6's
  /// split around 1,000 days).
  std::int64_t max_public_validity = 0;
  std::int64_t max_private_validity = 0;
};

/// `jobs` shards the per-record classification/CT-lookup stage across
/// worker threads (1 = sequential, 0 = hardware concurrency); aggregation
/// runs in record order, so the report is byte-identical at every jobs
/// level. Leaf fingerprints come from the dataset's index memo — no
/// certificate is re-hashed here.
CtReport ct_report(const CertDataset& certs, const devicesim::SimWorld& world,
                   int jobs = 1);

/// Table 9: validity variance of one private issuer (Netflix in the paper).
struct IssuerValidityRow {
  std::string leaf_issuer_cn;      // as printed (issuer org + chain root)
  std::string topmost_issuer;
  std::set<std::int64_t> validity_days;
  std::size_t certs = 0;
  bool any_in_ct = false;
};

std::vector<IssuerValidityRow> issuer_validity_variance(
    const CertDataset& certs, const devicesim::SimWorld& world,
    const std::string& issuer_org);

}  // namespace iotls::core

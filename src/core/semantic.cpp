#include "core/semantic.hpp"

#include <algorithm>
#include <set>

#include "tls/ciphersuite.hpp"

namespace iotls::core {

namespace {

using tls::Cipher;
using tls::KexAuth;
using tls::Mac;

struct ComponentSets {
  std::set<KexAuth> kex;
  std::set<Cipher> cipher;
  std::set<Mac> mac;
};

/// Decompose a suite list, skipping signalling values (SCSV/GREASE/unknown).
ComponentSets decompose(const std::vector<std::uint16_t>& suites) {
  ComponentSets out;
  for (std::uint16_t code : suites) {
    tls::CipherSuiteInfo info = tls::suite_info(code);
    if (info.is_scsv) continue;
    if (!tls::is_registered_suite(code)) continue;
    out.kex.insert(info.kex_auth);
    out.cipher.insert(info.cipher);
    out.mac.insert(info.mac);
  }
  return out;
}

/// Non-signalling suites of a proposal, order preserved.
std::vector<std::uint16_t> effective_suites(const std::vector<std::uint16_t>& suites) {
  std::vector<std::uint16_t> out;
  for (std::uint16_t code : suites) {
    if (!tls::suite_info(code).is_scsv) out.push_back(code);
  }
  return out;
}

/// Bidirectional coverage of cipher sets under the "similar" relation.
bool similar_cipher_sets(const std::set<Cipher>& a, const std::set<Cipher>& b) {
  auto covered = [](const std::set<Cipher>& from, const std::set<Cipher>& to) {
    for (Cipher c : from) {
      bool found = false;
      for (Cipher d : to) {
        if (tls::similar_cipher(c, d)) found = true;
      }
      if (!found) return false;
    }
    return true;
  };
  return covered(a, b) && covered(b, a);
}

bool similar_mac_sets(const std::set<Mac>& a, const std::set<Mac>& b) {
  auto covered = [](const std::set<Mac>& from, const std::set<Mac>& to) {
    for (Mac m : from) {
      bool found = false;
      for (Mac n : to) {
        if (tls::similar_mac(m, n)) found = true;
      }
      if (!found) return false;
    }
    return true;
  };
  return covered(a, b) && covered(b, a);
}

double jaccard(const std::vector<std::uint16_t>& a, const std::vector<std::uint16_t>& b) {
  std::set<std::uint16_t> sa(a.begin(), a.end()), sb(b.begin(), b.end());
  std::size_t inter = 0;
  for (std::uint16_t x : sa) inter += sb.count(x);
  std::size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

/// One representative library per distinct corpus suite list.
struct LibraryProfile {
  const corpus::KnownLibrary* lib;
  std::vector<std::uint16_t> suites;      // effective
  std::set<std::uint16_t> suite_set;
  ComponentSets components;
};

std::vector<LibraryProfile> library_profiles(const corpus::LibraryCorpus& corpus) {
  std::vector<LibraryProfile> out;
  std::set<std::string> seen;
  for (const corpus::KnownLibrary& lib : corpus.entries()) {
    std::vector<std::uint16_t> eff = effective_suites(lib.fp.cipher_suites);
    std::string key;
    for (std::uint16_t s : eff) key += std::to_string(s) + ",";
    if (!seen.insert(key).second) continue;
    LibraryProfile profile;
    profile.lib = &lib;
    profile.suites = std::move(eff);
    profile.suite_set.insert(profile.suites.begin(), profile.suites.end());
    profile.components = decompose(lib.fp.cipher_suites);
    out.push_back(std::move(profile));
  }
  return out;
}

}  // namespace

std::string semantic_category_name(SemanticCategory c) {
  switch (c) {
    case SemanticCategory::kExact: return "Exact same";
    case SemanticCategory::kSameSetDifferentOrder: return "Same set diff order";
    case SemanticCategory::kSameComponent: return "Same component";
    case SemanticCategory::kSimilarComponent: return "Similar component";
    case SemanticCategory::kCustomization: return "Customization";
  }
  return "?";
}

SemanticReport semantic_match(const ClientDataset& ds,
                              const corpus::LibraryCorpus& corpus,
                              std::int64_t reference_day) {
  SemanticReport report;
  std::vector<LibraryProfile> profiles = library_profiles(corpus);

  // Unique {device, ciphersuite list} tuples.
  std::map<std::string, const ParsedEvent*> tuples;
  for (const ParsedEvent& e : ds.events()) {
    std::string key = e.device_id + "|";
    for (std::uint16_t s : e.fp.cipher_suites) key += std::to_string(s) + ",";
    tuples.emplace(key, &e);
  }

  std::map<SemanticCategory, std::set<std::string>> category_vendors;
  std::map<SemanticCategory, std::size_t> outdated_counts;

  // The profile scan depends only on the ciphersuite list, not the device,
  // so run it once per distinct list — devices overwhelmingly share lists.
  struct ListMatch {
    const LibraryProfile* best = nullptr;
    SemanticCategory cat = SemanticCategory::kCustomization;
    double suite_jaccard = -1;
  };
  std::map<std::vector<std::uint16_t>, ListMatch> by_list;

  for (const auto& [key, event] : tuples) {
    SemanticMatch m;
    m.device_id = event->device_id;
    m.vendor = event->vendor;

    auto [cache_it, fresh] = by_list.try_emplace(event->fp.cipher_suites);
    ListMatch& cached = cache_it->second;
    if (fresh) {
      std::vector<std::uint16_t> suites = effective_suites(event->fp.cipher_suites);
      std::set<std::uint16_t> suite_set(suites.begin(), suites.end());
      ComponentSets components = decompose(event->fp.cipher_suites);

      for (const LibraryProfile& p : profiles) {
        SemanticCategory cat;
        if (suites == p.suites) {
          cat = SemanticCategory::kExact;
        } else if (suite_set == p.suite_set) {
          cat = SemanticCategory::kSameSetDifferentOrder;
        } else if (components.kex == p.components.kex &&
                   components.cipher == p.components.cipher &&
                   components.mac == p.components.mac) {
          cat = SemanticCategory::kSameComponent;
        } else if (components.kex == p.components.kex &&
                   similar_cipher_sets(components.cipher, p.components.cipher) &&
                   similar_mac_sets(components.mac, p.components.mac)) {
          cat = SemanticCategory::kSimilarComponent;
        } else {
          continue;
        }
        double j = jaccard(suites, p.suites);
        // Prefer the stronger category; break ties by suite-list Jaccard.
        if (cached.best == nullptr || cat < cached.cat ||
            (cat == cached.cat && j > cached.suite_jaccard)) {
          cached.best = &p;
          cached.cat = cat;
          cached.suite_jaccard = j;
        }
      }
    }

    if (cached.best != nullptr) {
      m.category = cached.cat;
      m.library = cached.best->lib->version;
      m.library_outdated = !cached.best->lib->supported_at(reference_day);
      m.suite_jaccard = cached.suite_jaccard;
    }

    ++report.counts[m.category];
    category_vendors[m.category].insert(m.vendor);
    if (m.library_outdated) ++outdated_counts[m.category];
    report.tuples.push_back(std::move(m));
  }

  for (const auto& [cat, vendors] : category_vendors)
    report.vendor_counts[cat] = vendors.size();
  for (const auto& [cat, count] : report.counts) {
    report.outdated_ratio[cat] =
        count ? static_cast<double>(outdated_counts[cat]) / count : 0.0;
  }
  return report;
}

}  // namespace iotls::core

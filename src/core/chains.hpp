// §5.3: certificate chain validation over the probed dataset —
// Tables 7 (validation failures), 8 (expired), 14 (private issuers),
// plus Common Name mismatches.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/cert_dataset.hpp"
#include "x509/validation.hpp"

namespace iotls::core {

/// Validation outcome for one SNI.
struct SniValidation {
  std::string sni;
  x509::ValidationResult result;
  std::string leaf_issuer;
  bool leaf_issuer_public = true;
  std::size_t chain_length = 0;
  std::set<std::string> devices;
  std::set<std::string> vendors;
};

/// Table 7/14 row: one {SLD, issuer, status} aggregation.
struct DomainChainRow {
  std::string sld;
  std::string leaf_issuer;
  x509::ChainStatus status = x509::ChainStatus::kOk;
  std::set<std::size_t> chain_lengths;
  std::size_t fqdns = 0;
  std::set<std::string> devices;
  std::set<std::string> vendors;
};

/// Table 8 row.
struct ExpiredRow {
  std::string sni;
  std::string sld;
  std::int64_t not_after = 0;
  std::string issuer;
  std::set<std::string> devices;
  std::set<std::string> vendors;
};

struct ChainReport {
  std::vector<SniValidation> validations;

  /// Failure aggregation by {SLD, issuer} for statuses the paper tables:
  /// incomplete chain / untrusted root / self-signed (Tables 7 & 14).
  std::vector<DomainChainRow> failure_rows;     // any non-trusted status
  std::vector<DomainChainRow> private_root_rows;  // untrusted root only
  std::vector<DomainChainRow> self_signed_rows;   // self-signed leaf only

  std::vector<ExpiredRow> expired;
  std::vector<SniValidation> cn_mismatches;

  std::size_t validated = 0;
  std::size_t trusted = 0;
  /// Fraction of *private-CA-issued* leaves in failed chains (§5.3 reports
  /// 45.78% of private leaves fail validation for missing roots).
  double private_leaf_failure_ratio = 0;
};

/// Validate every reachable SNI's served chain at `now` (probe day).
///
/// `jobs` shards the per-SNI validation across worker threads (1 =
/// sequential, 0 = hardware concurrency); per-record results are computed
/// into pre-sized slots and aggregated in record order, so the report is
/// byte-identical at every jobs level. `cache` (optional) memoizes
/// signature verification per distinct certificate, so chains sharing
/// intermediates verify each edge once per survey instead of once per SNI.
ChainReport validate_dataset(const CertDataset& certs,
                             const devicesim::SimWorld& world, std::int64_t now,
                             int jobs = 1, x509::ValidationCache* cache = nullptr);

}  // namespace iotls::core

#include "devicesim/export.hpp"

#include <map>
#include <set>
#include <sstream>

#include "crypto/sha256.hpp"
#include "tls/fingerprint.hpp"
#include "tls/record.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/strings.hpp"

namespace iotls::devicesim {

namespace {

/// Parse an event's wire bytes down to its ClientHello.
tls::ClientHello hello_of(const ClientHelloEvent& event) {
  auto records = tls::parse_records(BytesView(event.wire.data(), event.wire.size()));
  Bytes payload = tls::handshake_payload(records);
  auto msgs = tls::split_handshakes(BytesView(payload.data(), payload.size()));
  for (const auto& m : msgs) {
    if (m.type != tls::HandshakeType::kClientHello) continue;
    Bytes framed = tls::encode_handshake(m.type, BytesView(m.body.data(), m.body.size()));
    return tls::ClientHello::parse(BytesView(framed.data(), framed.size()));
  }
  throw ParseError("event carries no ClientHello");
}

/// Rebuild a ClientHello carrying exactly the fingerprint's fields
/// (used when wire bytes were not exported).
tls::ClientHello hello_from_fp_key(const std::string& key, const std::string& sni) {
  auto fields = split(key, ',');
  if (fields.size() != 3) throw ParseError("malformed fingerprint key: " + key);
  tls::ClientHello ch;
  ch.legacy_version = static_cast<std::uint16_t>(
      std::min(std::stoul(fields[0]), 0x0303ul));
  auto parse_list = [](const std::string& s) {
    std::vector<std::uint16_t> out;
    if (s.empty()) return out;
    for (const std::string& part : split(s, '-')) {
      out.push_back(static_cast<std::uint16_t>(std::stoul(part)));
    }
    return out;
  };
  ch.cipher_suites = parse_list(fields[1]);
  bool has_server_name = false;
  for (std::uint16_t type : parse_list(fields[2])) {
    ch.extensions.push_back({type, {}});
    if (type == 0) has_server_name = true;
  }
  // Filling SNI into an extension list without server_name would change the
  // fingerprint; only populate it when the original client sent one.
  if (has_server_name) ch.set_sni(sni);
  return ch;
}

}  // namespace

std::string pseudonym(const std::string& id, const std::string& salt) {
  crypto::Sha256Digest d = crypto::sha256(salt + ":" + id);
  return to_hex(BytesView(d.data(), d.size())).substr(0, 12);
}

std::string export_events_csv(const FleetDataset& fleet, const ExportOptions& opts) {
  std::map<std::string, const Device*> devices;
  for (const Device& d : fleet.devices) devices[d.id] = &d;

  std::ostringstream out;
  out << "device,vendor,type,user,day,sni,fp_key";
  if (opts.include_wire) out << ",wire_hex";
  out << "\n";
  for (const ClientHelloEvent& event : fleet.events) {
    const Device* device = devices.at(event.device_id);
    tls::Fingerprint fp = tls::fingerprint_of(hello_of(event));
    out << pseudonym(device->id, opts.salt) << ',' << device->vendor << ','
        << device->type << ',' << pseudonym(device->user_id, opts.salt) << ','
        << event.day << ',' << event.sni << ',' << fp.key();
    if (opts.include_wire) {
      out << ',' << to_hex(BytesView(event.wire.data(), event.wire.size()));
    }
    out << "\n";
  }
  return out.str();
}

std::string export_devices_csv(const FleetDataset& fleet, const ExportOptions& opts) {
  std::ostringstream out;
  out << "device,vendor,type,user\n";
  for (const Device& d : fleet.devices) {
    out << pseudonym(d.id, opts.salt) << ',' << d.vendor << ',' << d.type << ','
        << pseudonym(d.user_id, opts.salt) << "\n";
  }
  return out.str();
}

std::vector<Device> parse_devices_csv(const std::string& devices_csv) {
  std::vector<Device> devices;
  std::istringstream dev_in(devices_csv);
  std::string line;
  if (!std::getline(dev_in, line) || !starts_with(line, "device,"))
    throw ParseError("devices CSV: missing header");
  while (std::getline(dev_in, line)) {
    if (line.empty()) continue;
    auto cols = split(line, ',');
    if (cols.size() != 4) throw ParseError("devices CSV: bad row: " + line);
    devices.push_back({cols[0], cols[1], cols[2], cols[3]});
  }
  return devices;
}

bool events_header_has_wire(const std::string& header) {
  if (!starts_with(header, "device,"))
    throw ParseError("events CSV: missing header");
  return header.find(",wire_hex") != std::string::npos;
}

ClientHelloEvent parse_event_row(const std::string& line, bool has_wire) {
  auto cols = split(line, ',');
  // The fp_key itself contains commas: device,vendor,type,user,day,sni +
  // 3 fp fields (+ optional wire) => 9 or 10 columns.
  std::size_t expected = has_wire ? 10 : 9;
  if (cols.size() != expected) throw ParseError("events CSV: bad row: " + line);
  ClientHelloEvent event;
  event.device_id = cols[0];
  event.day = std::stoll(cols[4]);
  event.sni = cols[5];
  std::string fp_key = cols[6] + "," + cols[7] + "," + cols[8];
  if (has_wire) {
    event.wire = from_hex(cols[9]);
  } else {
    tls::ClientHello ch = hello_from_fp_key(fp_key, event.sni);
    Bytes msg = ch.encode();
    event.wire = tls::encode_records(tls::ContentType::kHandshake,
                                     ch.legacy_version,
                                     BytesView(msg.data(), msg.size()));
  }
  return event;
}

FleetDataset import_events_csv(const std::string& events_csv,
                               const std::string& devices_csv) {
  FleetDataset fleet;
  fleet.devices = parse_devices_csv(devices_csv);
  std::set<std::string> users;
  for (const Device& d : fleet.devices) users.insert(d.user_id);

  std::istringstream ev_in(events_csv);
  std::string line;
  if (!std::getline(ev_in, line))
    throw ParseError("events CSV: missing header");
  bool has_wire = events_header_has_wire(line);
  while (std::getline(ev_in, line)) {
    if (line.empty()) continue;
    fleet.events.push_back(parse_event_row(line, has_wire));
  }

  fleet.users.assign(users.begin(), users.end());
  return fleet;
}

}  // namespace iotls::devicesim

#include "devicesim/export.hpp"

#include <array>
#include <charconv>
#include <map>
#include <set>
#include <sstream>

#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "tls/fingerprint.hpp"
#include "tls/record.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/strings.hpp"

namespace iotls::devicesim {

namespace {

/// Strict std::from_chars over a view: the whole field must be one integer.
/// Throws ParseError (never std::invalid_argument — a malformed field in a
/// streamed CSV row must surface as a parse failure, which the tail readers
/// count and skip, not as an uncaught logic_error).
template <typename T>
T parse_int_field(std::string_view s, const char* what) {
  T value{};
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw ParseError(std::string("events CSV: bad ") + what + ": " +
                     std::string(s));
  return value;
}

/// Parse an event's wire bytes down to its ClientHello.
tls::ClientHello hello_of(const ClientHelloEvent& event) {
  auto records = tls::parse_records(BytesView(event.wire.data(), event.wire.size()));
  Bytes payload = tls::handshake_payload(records);
  auto msgs = tls::split_handshakes(BytesView(payload.data(), payload.size()));
  for (const auto& m : msgs) {
    if (m.type != tls::HandshakeType::kClientHello) continue;
    Bytes framed = tls::encode_handshake(m.type, BytesView(m.body.data(), m.body.size()));
    return tls::ClientHello::parse(BytesView(framed.data(), framed.size()));
  }
  throw ParseError("event carries no ClientHello");
}

/// Rebuild a ClientHello carrying exactly the fingerprint's fields
/// (used when wire bytes were not exported). Takes the three fp_key fields
/// pre-split (the row parser already has them as views; re-joining only to
/// re-split would be the allocation churn this path exists to avoid).
tls::ClientHello hello_from_fp_key(std::string_view version,
                                   std::string_view suites,
                                   std::string_view extensions,
                                   std::string_view sni) {
  tls::ClientHello ch;
  ch.legacy_version = std::min<std::uint16_t>(
      parse_int_field<std::uint16_t>(version, "fingerprint version"), 0x0303);
  auto parse_list = [](std::string_view s) {
    std::vector<std::uint16_t> out;
    if (s.empty()) return out;
    std::size_t start = 0;
    while (true) {
      std::size_t pos = s.find('-', start);
      std::string_view part = pos == std::string_view::npos
                                  ? s.substr(start)
                                  : s.substr(start, pos - start);
      out.push_back(parse_int_field<std::uint16_t>(part, "fingerprint field"));
      if (pos == std::string_view::npos) return out;
      start = pos + 1;
    }
  };
  ch.cipher_suites = parse_list(suites);
  bool has_server_name = false;
  for (std::uint16_t type : parse_list(extensions)) {
    ch.extensions.push_back({type, {}});
    if (type == 0) has_server_name = true;
  }
  // Filling SNI into an extension list without server_name would change the
  // fingerprint; only populate it when the original client sent one.
  if (has_server_name) ch.set_sni(std::string(sni));
  return ch;
}

}  // namespace

std::string pseudonym(const std::string& id, const std::string& salt) {
  crypto::Sha256Digest d = crypto::sha256(salt + ":" + id);
  return to_hex(BytesView(d.data(), d.size())).substr(0, 12);
}

std::string export_events_csv(const FleetDataset& fleet, const ExportOptions& opts) {
  std::map<std::string, const Device*> devices;
  for (const Device& d : fleet.devices) devices[d.id] = &d;

  std::ostringstream out;
  out << "device,vendor,type,user,day,sni,fp_key";
  if (opts.include_wire) out << ",wire_hex";
  out << "\n";
  for (const ClientHelloEvent& event : fleet.events) {
    const Device* device = devices.at(event.device_id);
    tls::Fingerprint fp = tls::fingerprint_of(hello_of(event));
    out << pseudonym(device->id, opts.salt) << ',' << device->vendor << ','
        << device->type << ',' << pseudonym(device->user_id, opts.salt) << ','
        << event.day << ',' << event.sni << ',' << fp.key();
    if (opts.include_wire) {
      out << ',' << to_hex(BytesView(event.wire.data(), event.wire.size()));
    }
    out << "\n";
  }
  return out.str();
}

std::string export_devices_csv(const FleetDataset& fleet, const ExportOptions& opts) {
  std::ostringstream out;
  out << "device,vendor,type,user\n";
  for (const Device& d : fleet.devices) {
    out << pseudonym(d.id, opts.salt) << ',' << d.vendor << ',' << d.type << ','
        << pseudonym(d.user_id, opts.salt) << "\n";
  }
  return out.str();
}

std::vector<Device> parse_devices_csv(const std::string& devices_csv) {
  std::vector<Device> devices;
  std::string_view text(devices_csv);
  std::size_t n_lines = 0;
  for (char c : text)
    if (c == '\n') ++n_lines;
  devices.reserve(n_lines);  // header over-counts by one; close enough
  bool saw_header = false;
  for (std::size_t start = 0; start <= text.size();) {
    std::size_t pos = text.find('\n', start);
    std::size_t end = pos == std::string_view::npos ? text.size() : pos;
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (!saw_header) {
      if (!starts_with(line, "device,"))
        throw ParseError("devices CSV: missing header");
      saw_header = true;
      continue;
    }
    if (line.empty()) {
      if (pos == std::string_view::npos) break;
      continue;
    }
    std::array<std::string_view, 4> cols;
    if (split_views(line, ',', cols) != 4)
      throw ParseError("devices CSV: bad row: " + std::string(line));
    devices.push_back({std::string(cols[0]), std::string(cols[1]),
                       std::string(cols[2]), std::string(cols[3])});
    if (pos == std::string_view::npos) break;
  }
  if (!saw_header) throw ParseError("devices CSV: missing header");
  return devices;
}

bool events_header_has_wire(std::string_view header) {
  if (!starts_with(header, "device,"))
    throw ParseError("events CSV: missing header");
  return header.find(",wire_hex") != std::string_view::npos;
}

ClientHelloEvent parse_event_row(std::string_view line, bool has_wire) {
  // The fp_key itself contains commas: device,vendor,type,user,day,sni +
  // 3 fp fields (+ optional wire) => 9 or 10 columns. Fixed-size view
  // splitting: no per-column heap string, no vector.
  std::array<std::string_view, 10> cols;
  std::size_t n = split_views(line, ',', cols);
  std::size_t expected = has_wire ? 10 : 9;
  if (n != expected)
    throw ParseError("events CSV: bad row: " + std::string(line));
  ClientHelloEvent event;
  event.device_id = std::string(cols[0]);
  event.day = parse_int_field<std::int64_t>(cols[4], "day");
  event.sni = std::string(cols[5]);
  if (has_wire) {
    event.wire = from_hex(cols[9]);
  } else {
    tls::ClientHello ch = hello_from_fp_key(cols[6], cols[7], cols[8], cols[5]);
    Bytes msg = ch.encode();
    event.wire = tls::encode_records(tls::ContentType::kHandshake,
                                     ch.legacy_version,
                                     BytesView(msg.data(), msg.size()));
  }
  return event;
}

FleetDataset import_events_csv(const std::string& events_csv,
                               const std::string& devices_csv) {
  // Timed so the CI fleet phase can compare CSV re-parse against
  // snapshot.open_ns / snapshot.load_ns off --stats=json.
  obs::ScopedTimer timer(obs::metrics().histogram("fleet.csv_parse_ns"));
  FleetDataset fleet;
  fleet.devices = parse_devices_csv(devices_csv);
  std::set<std::string> users;
  for (const Device& d : fleet.devices) users.insert(d.user_id);

  // First pass: index line boundaries (arena-backed — the index dies with
  // the import) and size the event vector once instead of doubling a
  // multi-hundred-MB vector a dozen times on a fleet-scale file.
  ArenaAllocator arena(1 << 20, &obs::parse_arena());
  std::string_view text(events_csv);
  std::size_t n_lines = 0;
  for (char c : text)
    if (c == '\n') ++n_lines;
  if (!text.empty() && text.back() != '\n') ++n_lines;
  if (n_lines == 0) throw ParseError("events CSV: missing header");
  std::string_view* lines = arena.allocate_array<std::string_view>(n_lines);
  std::size_t li = 0;
  for (std::size_t start = 0; start < text.size();) {
    std::size_t pos = text.find('\n', start);
    std::size_t end = pos == std::string_view::npos ? text.size() : pos;
    lines[li++] = text.substr(start, end - start);
    start = end + 1;
  }

  bool has_wire = events_header_has_wire(lines[0]);
  fleet.events.reserve(li > 0 ? li - 1 : 0);
  for (std::size_t i = 1; i < li; ++i) {
    if (lines[i].empty()) continue;
    fleet.events.push_back(parse_event_row(lines[i], has_wire));
  }

  fleet.users.assign(users.begin(), users.end());
  return fleet;
}

}  // namespace iotls::devicesim

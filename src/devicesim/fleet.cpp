#include "devicesim/fleet.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <set>

#include "devicesim/stacks.hpp"
#include "devicesim/vendors.hpp"
#include "tls/record.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace iotls::devicesim {

namespace {

std::string slug(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!out.empty() && out.back() != '-') {
      out.push_back('-');
    }
  }
  return out;
}

/// Is this vendor's fleet TV/streaming flavoured? (drives "tv" visitation)
bool tv_vendor(const VendorSpec& v) {
  for (const std::string& t : v.types) {
    if (t.find("TV") != std::string::npos || t.find("Roku") != std::string::npos ||
        t.find("Chromecast") != std::string::npos ||
        t.find("Shield") != std::string::npos ||
        t.find("Genie") != std::string::npos ||
        t.find("Hopper") != std::string::npos)
      return true;
  }
  return false;
}

/// SSL 3.0 stragglers (App. B.3.2: 26 devices across 6 vendors).
int ssl3_device_count(const std::string& vendor_name) {
  if (vendor_name == "Amazon") return 13;
  if (vendor_name == "Synology") return 5;
  if (vendor_name == "Samsung") return 4;
  if (vendor_name == "LG") return 2;
  if (vendor_name == "TP-Link") return 1;
  if (vendor_name == "Western Digital") return 1;
  return 0;
}

struct StackPools {
  std::vector<TlsStack> shared;                 // materialized shared stacks
  std::vector<const SharedStackSpec*> shared_specs;
  /// Ecosystem pool: third-party app stacks / stock library builds with a
  /// per-vendor adoption probability.
  std::vector<TlsStack> eco;
  std::vector<std::map<std::string, double>> eco_adoption;
};

/// Assign SNI targets to a vendor-level or device-level stack.
std::vector<std::string> pick_snis(Rng& rng, const VendorSpec& vendor,
                                   const ServerUniverse& universe, bool tv) {
  std::vector<std::string> pool = universe.fqdns_with_tag("vendor:" + vendor.name);
  auto extend = [&](const std::string& tag, std::size_t max_take) {
    auto fqdns = universe.fqdns_with_tag(tag);
    if (fqdns.empty()) return;
    std::size_t take = std::min(max_take, fqdns.size());
    auto idx = rng.sample_indices(fqdns.size(), take);
    for (std::size_t i : idx) pool.push_back(fqdns[i]);
  };
  if (!vendor.isolated) {
    extend("cloud", 3);
    if (tv) {
      extend("tv", 4);
      extend("ads", 2);
    }
    static const char* kGeneric[] = {"analytics", "smart-home", "firmware",
                                     "media", "music"};
    extend(kGeneric[rng.uniform(0, 4)], 2);
  }
  if (pool.empty()) pool.push_back("api.amazonaws.com");  // cloud fallback
  // A stack talks to a handful of endpoints, not the whole pool.
  rng.shuffle(pool);
  std::size_t keep = std::min<std::size_t>(pool.size(), 3 + rng.uniform(0, 4));
  pool.resize(keep);
  return pool;
}

/// Build the ecosystem pool (§4.4's shared supply chain beyond the named
/// Table 4/5 relationships): common application stacks adopted across 2..10
/// vendor fleets, plus a slice of pristine library builds whose fingerprints
/// match the corpus exactly.
void build_ecosystem(StackPools& pools, const FleetConfig& config, Rng root,
                     const corpus::LibraryCorpus& corpus,
                     const ServerUniverse& universe) {
  std::vector<std::string> eras = corpus.era_names();
  // Vendors weighted by fleet size; tiny fleets rarely host shared apps.
  // Vendors whose fingerprint estates are dominated by a *named* partnership
  // (Table 4's pairs) are kept out of the generic pool so the partnership
  // signal stays visible in the Jaccard analysis.
  static const std::set<std::string> kPartnershipVendors = {
      "HDHomeRun", "SiliconDust", "Sharp", "TCL", "Insignia", "Arlo",
      "NETGEAR", "Onkyo", "Pioneer", "Denon", "Marantz", "Skybell",
      "Sense", "Texas Instruments", "Brother", "Dish Network",
      "Belkin"};  // Belkin: ALL devices front RC4_128 (B.8) — no generic apps
  std::vector<const VendorSpec*> candidates;
  std::vector<double> weights;
  for (const VendorSpec& v : vendor_table()) {
    if (v.isolated || v.devices < 4) continue;
    if (kPartnershipVendors.count(v.name) > 0) continue;
    candidates.push_back(&v);
    weights.push_back(static_cast<double>(v.devices));
  }

  static const char* kEcoTags[] = {"analytics", "media",    "music",
                                   "smart-home", "firmware", "cloud",
                                   "tv",         "ads"};

  for (int i = 0; i < config.ecosystem_pool; ++i) {
    Rng rng = root.fork("eco-" + std::to_string(i));
    TlsStack stack;
    stack.name = "eco:" + std::to_string(i);
    bool stock = i < config.ecosystem_stock;
    if (stock) {
      // A pristine library build (matches the known-library corpus).
      const corpus::KnownLibrary& lib = corpus.entries()[static_cast<std::size_t>(
          rng.uniform(0, corpus.entries().size() - 1))];
      stack.config.version = lib.fp.version;
      stack.config.suites = lib.fp.cipher_suites;
      stack.config.extensions = lib.fp.extensions;
      if (std::find(stack.config.extensions.begin(), stack.config.extensions.end(),
                    0) == stack.config.extensions.end()) {
        stack.config.extensions.insert(stack.config.extensions.begin(), 0);
      }
    } else {
      double sloppiness = 0.15 + 0.7 * rng.uniform01();
      // Weight the pool toward TLS 1.2-era libraries: Table 12 finds only a
      // few hundred TLS 1.0 proposals in 5,499.
      std::string era = rng.pick(eras);
      if (corpus.era(era).version < 0x0303 && rng.chance(0.7)) era = rng.pick(eras);
      stack.config = mutate_era(corpus.era(era), rng, sloppiness);
    }

    // Vendor spread: mostly 2, sometimes 3-5, occasionally wide (stock
    // builds spread widest — many vendors ship the same default library).
    std::size_t degree;
    if (stock && rng.chance(0.4)) {
      degree = 6 + rng.uniform(0, 5);
    } else {
      double roll = rng.uniform01();
      degree = roll < 0.55 ? 2 : (roll < 0.90 ? 3 + rng.uniform(0, 2) : 6 + rng.uniform(0, 3));
    }
    degree = std::min(degree, candidates.size());

    std::map<std::string, double> adoption;
    std::size_t guard = 0;
    while (adoption.size() < degree && guard++ < 200) {
      const VendorSpec* v = candidates[rng.weighted(weights)];
      if (adoption.count(v->name)) continue;
      // Expected adopters per vendor ~2-3 devices.
      double p = std::min(0.9, (1.8 + rng.uniform01() * 2.0) / v->devices);
      adoption[v->name] = p;
    }

    // SNIs: generic third-party service endpoints.
    std::vector<std::string> snis;
    Rng srng = rng.fork("snis");
    for (int t = 0; t < 2; ++t) {
      auto fqdns = universe.fqdns_with_tag(kEcoTags[srng.uniform(0, 7)]);
      if (fqdns.empty()) continue;
      auto idx = srng.sample_indices(fqdns.size(), std::min<std::size_t>(2, fqdns.size()));
      for (std::size_t j : idx) snis.push_back(fqdns[j]);
    }
    if (snis.empty()) snis.push_back("api.amazonaws.com");
    stack.snis = std::move(snis);

    // Modern third-party stacks GREASE their lists (B.10 finds GREASE from
    // devices of 23 vendors — far more than ship a greasing base stack).
    auto has_suite = [&](std::uint16_t code) {
      return std::find(stack.config.suites.begin(), stack.config.suites.end(),
                       code) != stack.config.suites.end();
    };
    bool modern = stack.config.version >= 0x0304 || has_suite(0x1301) ||
                  has_suite(0xcca8) || has_suite(0xcca9);
    if (modern) {
      stack.grease_suites = rng.chance(0.5);
      stack.grease_extensions =
          stack.grease_suites ? rng.chance(0.5) : rng.chance(0.06);
    }

    pools.eco.push_back(std::move(stack));
    pools.eco_adoption.push_back(std::move(adoption));
  }
}

}  // namespace

FleetDataset generate_fleet(const FleetConfig& config,
                            const corpus::LibraryCorpus& corpus,
                            const ServerUniverse& universe) {
  FleetDataset dataset;
  Rng root(config.seed);

  // Users.
  dataset.users.reserve(static_cast<std::size_t>(config.users));
  for (int i = 0; i < config.users; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "user-%04d", i);
    dataset.users.push_back(buf);
  }

  // Shared stacks.
  StackPools pools;
  for (const SharedStackSpec& spec : shared_stack_table()) {
    pools.shared.push_back(materialize_shared_stack(spec, corpus));
    pools.shared_specs.push_back(&spec);
  }
  build_ecosystem(pools, config, root.fork("ecosystem"), corpus, universe);

  std::size_t user_cursor = 0;  // first devices get distinct users
  Rng user_rng = root.fork("users");

  // Per-device primary stack, kept for the SNI-coverage pass below.
  std::vector<TlsStack> primary_stack;

  for (const VendorSpec& vendor : vendor_table()) {
    Rng vrng = root.fork("vendor:" + vendor.name);
    VendorQuirks quirks = quirks_for(vendor.name);
    bool tv = tv_vendor(vendor);
    const corpus::EraConfig& base_era = corpus.era(vendor.base_era);

    // Vendor base stacks. Wyze ships an unmodified library build — the
    // §4.1 case study that matches OpenSSL 1.0.2 exactly.
    std::vector<TlsStack> base_stacks;
    for (int b = 0; b < vendor.base_stacks; ++b) {
      TlsStack stack;
      stack.name = vendor.name + "/base-" + std::to_string(b);
      Rng srng = vrng.fork("base-" + std::to_string(b));
      if (vendor.name == "Wyze" && b == 0) {
        stack.config = base_era;  // pristine library default
      } else {
        stack.config = mutate_era(base_era, srng, vendor.sloppiness, quirks);
      }
      stack.snis = pick_snis(srng, vendor, universe, tv);
      // B.10: GREASE appears on a subset of a greasing vendor's stacks.
      stack.grease_suites = vendor.grease && b % 2 == 1;
      stack.grease_extensions = vendor.grease && b % 4 == 1;
      base_stacks.push_back(std::move(stack));
    }
    if (base_stacks.empty()) {
      // SDK-only vendors (HDHomeRun/SiliconDust) still need one entry so the
      // adoption loop below can run; shared stacks provide their traffic.
    }

    // Firmware churn: most vendors ship an updated build of their primary
    // base stack during the capture window; devices that install it switch
    // stacks at their individual update day (the paper's §7 future work,
    // measured by core/longitudinal.hpp).
    std::optional<TlsStack> updated_base;
    if (!base_stacks.empty() && vrng.chance(0.6)) {
      TlsStack v2;
      v2.name = base_stacks.front().name + "/v2";
      Rng urng = vrng.fork("base-0-v2");
      v2.config = mutate_era(base_era, urng, vendor.sloppiness * 0.9, quirks);
      v2.snis = base_stacks.front().snis;
      v2.grease_suites = base_stacks.front().grease_suites;
      v2.grease_extensions = base_stacks.front().grease_extensions;
      updated_base = std::move(v2);
    }

    // Device-type stacks: the application layer each type brings along
    // (the Fig. 3 clusters). SDK-only vendors (no base stacks: their whole
    // estate comes from a partner's SDK, e.g. HDHomeRun/SiliconDust) grow
    // none of their own.
    std::vector<std::vector<TlsStack>> type_stacks(vendor.types.size());
    for (std::size_t ti = 0; vendor.base_stacks > 0 && ti < vendor.types.size(); ++ti) {
      Rng trng = vrng.fork("type:" + vendor.types[ti]);
      int count = trng.chance(0.8 * config.type_stack_scale) ? 1 : 0;
      if (vendor.devices > 50 && trng.chance(0.5)) ++count;
      for (int k = 0; k < count; ++k) {
        TlsStack stack;
        stack.name = vendor.name + "/" + vendor.types[ti] + "/app-" + std::to_string(k);
        stack.config = mutate_era(base_era, trng, vendor.sloppiness * 0.8, quirks);
        stack.snis = pick_snis(trng, vendor, universe, tv);
        stack.grease_suites = vendor.grease && k == 0;
        type_stacks[ti].push_back(std::move(stack));
      }
    }

    int ssl3_remaining = ssl3_device_count(vendor.name);

    for (int di = 0; di < vendor.devices; ++di) {
      Device device;
      char idbuf[96];
      std::snprintf(idbuf, sizeof idbuf, "%s-%04d", slug(vendor.name).c_str(), di);
      device.id = idbuf;
      device.vendor = vendor.name;
      std::size_t type_index =
          static_cast<std::size_t>(vrng.uniform(0, vendor.types.size() - 1));
      device.type = vendor.types[type_index];
      if (user_cursor < dataset.users.size()) {
        device.user_id = dataset.users[user_cursor++];
      } else {
        device.user_id = dataset.users[static_cast<std::size_t>(
            user_rng.zipf(dataset.users.size(), 0.4))];
      }

      Rng drng = vrng.fork("device-" + std::to_string(di));

      // Assemble the device's stack set.
      std::vector<const TlsStack*> stacks;
      std::vector<TlsStack> owned;  // device-unique stacks live here

      if (vendor.disjoint) {
        // §4.3 DoC_device = 1 vendors: each device carries only its own
        // firmware-specific stacks, sharing nothing with its siblings.
        int unique = 1 + (drng.chance(0.3) ? 1 : 0);
        for (int k = 0; k < unique; ++k) {
          TlsStack stack;
          stack.name = vendor.name + "/" + device.id + "/own-" + std::to_string(k);
          stack.config = mutate_era(base_era, drng, vendor.sloppiness, quirks);
          stack.snis = pick_snis(drng, vendor, universe, tv);
          owned.push_back(std::move(stack));
        }
        for (const TlsStack& s : owned) stacks.push_back(&s);
        primary_stack.push_back(*stacks.front());

        unsigned conn = static_cast<unsigned>(drng.uniform(0, 15));
        for (const TlsStack* stack : stacks) {
          int events = 1 + static_cast<int>(drng.uniform(0, 1)) +
                         (drng.chance(0.3) ? 1 : 0);
          for (int e = 0; e < events; ++e) {
            ClientHelloEvent event;
            event.device_id = device.id;
            event.day = static_cast<std::int64_t>(
                drng.uniform(static_cast<std::uint64_t>(config.capture_start),
                             static_cast<std::uint64_t>(config.capture_end)));
            event.sni = stack->snis[static_cast<std::size_t>(
                drng.uniform(0, stack->snis.size() - 1))];
            tls::ClientHello hello = hello_from_stack(*stack, event.sni, conn++);
            Bytes msg = hello.encode();
            event.wire = tls::encode_records(tls::ContentType::kHandshake,
                                             hello.legacy_version,
                                             BytesView(msg.data(), msg.size()));
            dataset.events.push_back(std::move(event));
          }
        }
        dataset.devices.push_back(std::move(device));
        continue;
      }

      if (!base_stacks.empty()) {
        stacks.push_back(&base_stacks[static_cast<std::size_t>(
            drng.uniform(0, base_stacks.size() - 1))]);
        if (base_stacks.size() > 1 && drng.chance(0.35)) {
          const TlsStack* second = &base_stacks[static_cast<std::size_t>(
              drng.uniform(0, base_stacks.size() - 1))];
          if (second != stacks.front()) stacks.push_back(second);
        }
      }
      for (const TlsStack& ts : type_stacks[type_index]) {
        if (drng.chance(0.6)) stacks.push_back(&ts);
      }

      // Device-unique stacks: firmware deltas, user-installed services.
      double rate = vendor.device_stack_rate * config.device_stack_scale;
      int unique = 0;
      if (drng.chance(rate)) unique = 1;
      if (drng.chance(rate * 0.25)) ++unique;
      for (int k = 0; k < unique; ++k) {
        TlsStack stack;
        stack.name = vendor.name + "/" + device.id + "/own-" + std::to_string(k);
        if (drng.chance(config.exact_library_rate * 20) && quirks.front_suites.empty() &&
            drng.chance(0.1)) {
          // An exact known-library build (often an outdated curl+OpenSSL).
          const corpus::KnownLibrary& lib =
              corpus.entries()[static_cast<std::size_t>(
                  drng.uniform(0, corpus.entries().size() - 1))];
          stack.config.version = lib.fp.version;
          stack.config.suites = lib.fp.cipher_suites;
          stack.config.extensions = lib.fp.extensions;
        } else {
          stack.config = mutate_era(base_era, drng, vendor.sloppiness, quirks);
        }
        stack.snis = pick_snis(drng, vendor, universe, tv);
        owned.push_back(std::move(stack));
      }

      // Shared SDK / application stacks (Table 4/5 relationships).
      for (std::size_t si = 0; si < pools.shared.size(); ++si) {
        for (const auto& [member, adoption] : pools.shared_specs[si]->vendors) {
          if (member != vendor.name) continue;
          if (drng.chance(adoption * config.shared_stack_scale)) {
            stacks.push_back(&pools.shared[si]);
          }
        }
      }

      // Ecosystem pool adoption (§4.4 shared supply chain).
      if (!vendor.isolated) {
        for (std::size_t ei = 0; ei < pools.eco.size(); ++ei) {
          auto it = pools.eco_adoption[ei].find(vendor.name);
          if (it == pools.eco_adoption[ei].end()) continue;
          if (drng.chance(it->second)) stacks.push_back(&pools.eco[ei]);
        }
      }

      // Safety net: a device with no stack at all still speaks TLS through
      // some build — give it one of its own.
      if (stacks.empty() && owned.empty()) {
        TlsStack stack;
        stack.name = vendor.name + "/" + device.id + "/fallback";
        stack.config = mutate_era(base_era, drng, vendor.sloppiness, quirks);
        stack.snis = pick_snis(drng, vendor, universe, tv);
        owned.push_back(std::move(stack));
      }

      for (const TlsStack& s : owned) stacks.push_back(&s);

      primary_stack.push_back(stacks.empty() ? TlsStack{} : *stacks.front());

      // Does this device install the vendor's firmware update mid-window?
      bool device_updated =
          updated_base.has_value() && !stacks.empty() &&
          stacks.front() == &base_stacks.front() &&
          drng.chance(config.firmware_update_rate);
      std::int64_t update_day = 0;
      if (device_updated) {
        std::int64_t span = config.capture_end - config.capture_start;
        update_day = config.capture_start + span / 5 +
                     static_cast<std::int64_t>(drng.uniform(
                         0, static_cast<std::uint64_t>(span * 3 / 5)));
      }

      // Emit ClientHello events for every stack.
      unsigned connection_index = static_cast<unsigned>(drng.uniform(0, 15));
      for (const TlsStack* stack : stacks) {
        int events = 1 + static_cast<int>(drng.uniform(0, 1)) +
                         (drng.chance(0.3) ? 1 : 0);
        // An updated device emits from its base stack on both sides of the
        // update day, so the timeline shows the switch.
        if (device_updated && stack == &base_stacks.front()) events += 2;
        for (int e = 0; e < events; ++e) {
          ClientHelloEvent event;
          event.device_id = device.id;
          event.day = static_cast<std::int64_t>(
              drng.uniform(static_cast<std::uint64_t>(config.capture_start),
                           static_cast<std::uint64_t>(config.capture_end)));
          event.sni = stack->snis[static_cast<std::size_t>(
              drng.uniform(0, stack->snis.size() - 1))];
          const TlsStack* effective = stack;
          if (device_updated && stack == &base_stacks.front() &&
              event.day >= update_day) {
            effective = &*updated_base;
          }
          tls::ClientHello hello =
              hello_from_stack(*effective, event.sni, connection_index++);
          Bytes msg = hello.encode();
          event.wire = tls::encode_records(tls::ContentType::kHandshake,
                                           hello.legacy_version,
                                           BytesView(msg.data(), msg.size()));
          dataset.events.push_back(std::move(event));
        }
      }

      // SSL 3.0 stragglers: one extra legacy proposal from the first K
      // devices of the affected vendors (App. B.3.2).
      if (ssl3_remaining > 0) {
        --ssl3_remaining;
        TlsStack legacy;
        legacy.name = vendor.name + "/" + device.id + "/ssl3-probe";
        legacy.config = corpus.era("openssl-1.0.0");
        legacy.config.version = 0x0300;
        legacy.snis = !base_stacks.empty() ? base_stacks.front().snis
                                           : std::vector<std::string>{
                                                 "api.amazonaws.com"};
        int events = 1 + (ssl3_remaining < 5 ? 1 : 0);  // 31 proposals total
        for (int e = 0; e < events; ++e) {
          ClientHelloEvent event;
          event.device_id = device.id;
          event.day = static_cast<std::int64_t>(
              drng.uniform(static_cast<std::uint64_t>(config.capture_start),
                           static_cast<std::uint64_t>(config.capture_end)));
          event.sni = legacy.snis.front();
          tls::ClientHello hello = hello_from_stack(legacy, event.sni, 0);
          Bytes msg = hello.encode();
          event.wire = tls::encode_records(tls::ContentType::kHandshake, 0x0300,
                                           BytesView(msg.data(), msg.size()));
          dataset.events.push_back(std::move(event));
        }
      }

      dataset.devices.push_back(std::move(device));
    }
  }

  // Coverage pass: the §5 server dataset is the set of SNIs observed in
  // ClientHellos, so every universe server gets at least one visit — by a
  // device of the owning vendor when the server is vendor-tagged, else by a
  // rotating non-isolated device using its primary stack.
  if (config.cover_all_snis) {
    std::set<std::string> visited;
    for (const ClientHelloEvent& e : dataset.events) visited.insert(e.sni);

    std::map<std::string, std::vector<std::size_t>> by_vendor;
    std::vector<std::size_t> open_devices;
    for (std::size_t i = 0; i < dataset.devices.size(); ++i) {
      by_vendor[dataset.devices[i].vendor].push_back(i);
      if (!vendor(dataset.devices[i].vendor).isolated) open_devices.push_back(i);
    }

    Rng crng = root.fork("coverage");
    std::size_t round_robin = 0;
    for (const ServerSpec& spec : universe.specs()) {
      if (visited.count(spec.fqdn) > 0) continue;
      std::size_t device_index = dataset.devices.size();
      for (const std::string& tag : spec.tags) {
        if (!starts_with(tag, "vendor:")) continue;
        auto it = by_vendor.find(tag.substr(7));
        if (it != by_vendor.end() && !it->second.empty()) {
          device_index = it->second[static_cast<std::size_t>(
              crng.uniform(0, it->second.size() - 1))];
          break;
        }
      }
      if (device_index == dataset.devices.size()) {
        device_index = open_devices[round_robin++ % open_devices.size()];
      }

      const TlsStack& stack = primary_stack[device_index];
      if (stack.config.suites.empty()) continue;
      ClientHelloEvent event;
      event.device_id = dataset.devices[device_index].id;
      event.day = static_cast<std::int64_t>(
          crng.uniform(static_cast<std::uint64_t>(config.capture_start),
                       static_cast<std::uint64_t>(config.capture_end)));
      event.sni = spec.fqdn;
      tls::ClientHello hello = hello_from_stack(stack, event.sni, 3);
      Bytes msg = hello.encode();
      event.wire = tls::encode_records(tls::ContentType::kHandshake,
                                       hello.legacy_version,
                                       BytesView(msg.data(), msg.size()));
      dataset.events.push_back(std::move(event));
    }
  }

  return dataset;
}

void FleetDataset::rebuild_device_index() const {
  device_index_.clear();
  device_index_.reserve(devices.size());
  // First occurrence wins, matching what the original linear scan returned
  // for (pathological) duplicate ids.
  for (std::size_t i = 0; i < devices.size(); ++i)
    device_index_.emplace(devices[i].id, i);
  indexed_count_ = devices.size();
}

FleetDataset generate_synthetic_fleet(const SyntheticFleetSpec& spec) {
  FleetDataset fleet;
  const std::size_t n_vendors = std::max<std::size_t>(1, spec.vendors);
  const std::size_t n_fps = std::max<std::size_t>(1, spec.fingerprints);
  const std::size_t n_snis = std::max<std::size_t>(1, spec.snis);
  const std::size_t n_users = std::max<std::size_t>(1, spec.users);
  const std::int64_t day_span = std::max<std::int64_t>(1, spec.day_span);

  fleet.users.reserve(n_users);
  for (std::size_t u = 0; u < n_users; ++u)
    fleet.users.push_back("user-" + std::to_string(u));

  fleet.devices.reserve(spec.devices);
  for (std::size_t d = 0; d < spec.devices; ++d) {
    std::size_t v = d % n_vendors;
    fleet.devices.push_back(Device{
        "synth-" + std::to_string(d), "SynthVendor" + std::to_string(v),
        "Widget" + std::to_string(v % 7), fleet.users[d % n_users]});
  }

  // One wire encoding per distinct fingerprint, copied per event. Each
  // fingerprint pins its SNI (sni = fp % snis), so wire bytes and the
  // indexed SNI always agree and the cache stays one-dimensional.
  std::vector<std::string> sni_names(n_snis);
  for (std::size_t s = 0; s < n_snis; ++s)
    sni_names[s] = "srv-" + std::to_string(s) + ".example.com";
  std::vector<Bytes> fp_wire(n_fps);
  for (std::size_t f = 0; f < n_fps; ++f) {
    tls::ClientHello ch;
    ch.legacy_version = 0x0303;
    ch.cipher_suites = {static_cast<std::uint16_t>(0xc000 + (f & 0xff)),
                        static_cast<std::uint16_t>(0x0100 + (f >> 8)), 0xc02f,
                        0x009c};
    ch.extensions.push_back({10, {}});
    ch.extensions.push_back({11, {}});
    ch.set_sni(sni_names[f % n_snis]);
    Bytes msg = ch.encode();
    fp_wire[f] = tls::encode_records(tls::ContentType::kHandshake, 0x0303,
                                     BytesView(msg.data(), msg.size()));
  }

  // Vendors propose overlapping windows of the fingerprint space (the bench
  // harness's shape): adjacent vendors share most of their window, so the
  // Table 4 vendor-similarity analysis sees dense nonzero pairs even at
  // fleet scale.
  const std::size_t window = std::max<std::size_t>(1, n_fps / n_vendors);
  fleet.events.reserve(spec.devices * spec.events_per_device);
  for (std::size_t d = 0; d < spec.devices; ++d) {
    std::size_t v = d % n_vendors;
    for (std::size_t e = 0; e < spec.events_per_device; ++e) {
      std::size_t f = (v * window + (d / n_vendors + e) * 31 % (4 * window)) % n_fps;
      ClientHelloEvent ev;
      ev.device_id = fleet.devices[d].id;
      ev.day = spec.day_start +
               static_cast<std::int64_t>((d + e * 13) % static_cast<std::size_t>(day_span));
      ev.sni = sni_names[f % n_snis];
      ev.wire = fp_wire[f];
      fleet.events.push_back(std::move(ev));
    }
  }
  return fleet;
}

const Device* FleetDataset::find_device(const std::string& id) const {
  if (indexed_count_ != devices.size()) rebuild_device_index();
  auto it = device_index_.find(id);
  if (it == device_index_.end()) return nullptr;
  const Device& hit = devices[it->second];
  // A caller that mutated ids in place (size unchanged) leaves the index
  // stale; verify the hit and rebuild once on mismatch.
  if (hit.id != id) {
    rebuild_device_index();
    it = device_index_.find(id);
    return it == device_index_.end() ? nullptr : &devices[it->second];
  }
  return &hit;
}

}  // namespace iotls::devicesim

// The crowdsourced-fleet generator (§3's dataset, synthesized).
#pragma once

#include <cstdint>

#include "corpus/corpus.hpp"
#include "devicesim/scenario.hpp"
#include "devicesim/types.hpp"

namespace iotls::devicesim {

/// Generation knobs. Defaults are calibrated so the measured pipeline output
/// approximates the paper's aggregates (DESIGN.md §6); EXPERIMENTS.md records
/// the achieved values.
struct FleetConfig {
  std::uint64_t seed = 42;
  std::int64_t capture_start = 18015;  // 2019-04-29
  std::int64_t capture_end = 18475;    // 2020-08-01
  int users = 721;

  /// Global multipliers on per-vendor stack rates (calibration levers).
  double device_stack_scale = 0.36;  // device-unique stacks
  double type_stack_scale = 0.75;    // device-type (application) stacks
  double shared_stack_scale = 1.0;   // cross-vendor SDK/app adoption

  /// The ecosystem pool: third-party application stacks and stock library
  /// builds shared across vendor fleets — the paper's "shared software
  /// supply chain" (§4.4). Drives Table 2's degree>1 tail.
  int ecosystem_pool = 200;
  int ecosystem_stock = 26;  // pool members that are pristine library builds

  /// Probability a device-unique stack is an *exact* known-library build
  /// (contributes to the §4.1 2.55% match rate).
  double exact_library_rate = 0.012;

  /// Visit every universe SNI at least once (the §5.1 server dataset is the
  /// set of SNIs observed in ClientHellos).
  bool cover_all_snis = true;

  /// Firmware churn (the paper's §7 future work): probability a device
  /// receives a mid-window firmware update that replaces its vendor base
  /// stack with the vendor's updated build. Drives the longitudinal
  /// analysis (core/longitudinal.hpp).
  double firmware_update_rate = 0.18;
};

/// Generate the full synthetic fleet: devices, users and timestamped
/// ClientHello events (wire bytes). Deterministic in `config.seed`.
FleetDataset generate_fleet(const FleetConfig& config,
                            const corpus::LibraryCorpus& corpus,
                            const ServerUniverse& universe);

/// Shape of a scale-test fleet (generate_synthetic_fleet). Unlike
/// FleetConfig this does not model the paper's ecosystem — it exists to
/// make fleets of arbitrary size (millions of devices) fast, for the
/// snapshot/import perf harness. Label and fingerprint structure is still
/// rich enough for the Table 2-5 analyses to produce non-degenerate output.
struct SyntheticFleetSpec {
  std::size_t devices = 1000;
  std::size_t events_per_device = 2;
  std::size_t vendors = 64;        // device d belongs to vendor d % vendors
  std::size_t fingerprints = 512;  // distinct ClientHello shapes
  std::size_t snis = 97;           // distinct server names
  std::size_t users = 257;         // device d belongs to user d % users
  std::int64_t day_start = 18015;  // 2019-04-29, the paper's capture start
  std::int64_t day_span = 180;
};

/// Generate a fleet of exactly `spec.devices` devices with
/// `spec.events_per_device` events each. Wire bytes are precomputed once
/// per distinct fingerprint and copied per event, so generation is O(events)
/// with a tiny constant — a 1M-device fleet builds in seconds. Fully
/// deterministic (no RNG: every field is a function of the indices).
FleetDataset generate_synthetic_fleet(const SyntheticFleetSpec& spec);

}  // namespace iotls::devicesim

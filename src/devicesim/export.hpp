// Anonymized dataset export/import — the paper's released artifact
// (github.com/hyingdon/acmimc23_iot publishes an anonymized IoT Inspector
// slice plus the server certificate dataset). This module produces the
// equivalent CSVs from a generated fleet and loads them back, so downstream
// users can run the analyses without the generator.
#pragma once

#include <string>
#include <string_view>

#include "devicesim/types.hpp"

namespace iotls::devicesim {

/// Anonymization: device and user identifiers are replaced by salted-hash
/// pseudonyms; vendor/type labels and fingerprint material are retained
/// (they are the subject of the study).
struct ExportOptions {
  std::string salt = "iotls-v1";
  bool include_wire = false;  // include hex ClientHello bytes per event
};

/// Serialize the fleet to CSV. Columns:
///   device_pseudonym,vendor,type,user_pseudonym,day,sni,fp_key[,wire_hex]
/// where fp_key is the {version, suites, extensions} fingerprint of the
/// event's ClientHello (recomputed from the wire bytes).
std::string export_events_csv(const FleetDataset& fleet,
                              const ExportOptions& opts = {});

/// Device table: device_pseudonym,vendor,type,user_pseudonym.
std::string export_devices_csv(const FleetDataset& fleet,
                               const ExportOptions& opts = {});

/// Load an exported event CSV back into a (reduced) dataset: events carry
/// re-encoded ClientHellos when wire bytes were exported, else synthetic
/// hellos rebuilt from the fingerprint key. Throws ParseError on malformed
/// input.
FleetDataset import_events_csv(const std::string& events_csv,
                               const std::string& devices_csv);

// Row-level parsers underneath import_events_csv, exposed so streaming
// sources (stream/source) can consume a growing events CSV line by line
// with identical semantics to a batch import of the same bytes.

/// Parse a devices CSV (header + rows) into its device table.
std::vector<Device> parse_devices_csv(const std::string& devices_csv);

/// Does an events-CSV header line carry the optional wire_hex column?
/// Throws ParseError when `header` is not an events header at all.
bool events_header_has_wire(std::string_view header);

/// Parse one events-CSV data row (9 columns, 10 with `has_wire`; the fp_key
/// spans three). Splits into views — no per-column allocation — and throws
/// ParseError on malformed rows (including malformed integer fields, which
/// previously leaked std::invalid_argument past streaming readers that only
/// catch ParseError).
ClientHelloEvent parse_event_row(std::string_view line, bool has_wire);

/// The salted pseudonym used by the exporters (exposed for tests).
std::string pseudonym(const std::string& id, const std::string& salt);

}  // namespace iotls::devicesim

// The 65 device vendors of the study (Table 13) with their fleet parameters.
#pragma once

#include <string>
#include <vector>

namespace iotls::devicesim {

/// Per-vendor generation parameters. These are the calibration knobs that
/// make the synthetic fleet reproduce the paper's aggregate statistics
/// (DESIGN.md §6); everything downstream is measured, not asserted.
struct VendorSpec {
  int index = 0;                   // Table 13 vendor index
  std::string name;
  int devices = 4;                 // fleet size for this vendor
  int base_stacks = 1;             // vendor-level shared TLS stacks
  double device_stack_rate = 0.4;  // expected extra device-unique stacks per device
  double sloppiness = 0.35;        // propensity to retain vulnerable suites [0,1]
  std::string base_era;            // corpus era its stacks derive from
  std::vector<std::string> types;  // device type labels
  std::vector<std::string> domains;  // own second-level domains
  bool grease = false;             // modern stacks advertise GREASE (B.10)
  /// Devices only contact the vendor's own servers (§5.2: Canary, Tuya and
  /// Obihai devices exclusively visit vendor-signed servers).
  bool isolated = false;
  /// Every device carries its own firmware-specific stack and shares nothing
  /// with its siblings — the DoC_device = 1 vendors of Fig. 2 (§4.3: devices
  /// of ~20% of vendors use completely disjoint fingerprint sets).
  bool disjoint = false;
};

/// The full vendor table, indexed per Table 13, device counts summing to
/// 2,014 across 65 vendors.
const std::vector<VendorSpec>& vendor_table();

/// Lookup by name; throws std::out_of_range for unknown vendors.
const VendorSpec& vendor(const std::string& name);

/// Total devices across the table (== 2,014).
int total_devices();

}  // namespace iotls::devicesim

#include "devicesim/vendors.hpp"

#include <stdexcept>

namespace iotls::devicesim {

namespace {

std::vector<VendorSpec> build_table() {
  // Fields: index, name, devices, base_stacks, device_stack_rate, sloppiness,
  // base_era, types, domains, grease.
  // Device counts are calibrated to sum to 2,014 (§3); stack counts and
  // rates target the Table 2/3 fingerprint statistics.
  std::vector<VendorSpec> t = {
      {1, "Roku", 125, 3, 0.25, 0.55, "openssl-1.0.1",
       {"Streaming Stick", "Ultra", "Express", "Premiere", "Soundbar"},
       {"roku.com", "rokutime.com"}, false},
      {2, "TCL", 38, 0, 0.05, 0.55, "openssl-1.0.1",
       {"Roku TV", "Smart TV", "Soundbar"},
       {"tclusa.com"}, false},
      {3, "Samsung", 135, 3, 0.55, 0.70, "openssl-1.0.2",
       {"Smart TV", "SmartThings Hub", "Refrigerator", "Smart Monitor",
        "Family Hub", "Soundbar", "Blu-ray Player"},
       {"samsungcloudsolution.net", "samsungcloudsolution.com", "samsungrm.net",
        "samsungelectronics.com", "pavv.co.kr", "samsunghrm.com"}, false},
      {4, "Sharp", 27, 0, 0.05, 0.55, "openssl-1.0.1",
       {"Roku TV", "Aquos TV"}, {"sharpusa.com"}, false},
      {5, "Insignia", 33, 1, 0.08, 0.55, "openssl-1.0.1",
       {"Roku TV", "Fire TV Edition"}, {"insigniaproducts.com"}, false},
      {6, "Amazon", 420, 4, 0.50, 0.45, "openssl-1.0.2",
       {"Echo", "Echo Dot", "Echo Show", "Echo Plus", "Fire TV",
        "Fire TV Stick", "Fire Tablet", "Cloud Cam", "Smart Plug", "Ring Doorbell"},
       {"amazon.com", "amazonaws.com", "amazonalexa.com", "amazonvideo.com",
        "media-amazon.com", "amazon-dss.com", "ssl-images-amazon.com",
        "amcs-tachyon.com"}, true},
      {7, "Nvidia", 52, 2, 0.50, 0.35, "openssl-1.1.0",
       {"Shield TV", "Shield Pro", "Jetson"},
       {"nvidia.com", "tegrazone.com"}, false},
      {8, "Google", 275, 4, 0.45, 0.20, "openssl-1.1.1",
       {"Home", "Home Mini", "Chromecast", "Chromecast Ultra", "Nest Thermostat",
        "Nest Cam", "Nest Protect", "Wifi Router", "Nest Hub"},
       {"google.com", "googleapis.com", "gstatic.com", "googleusercontent.com",
        "ggpht.com", "ytimg.com", "youtube.com", "google-analytics.com",
        "googlesyndication.com", "doubleclick.net", "nest.com"}, true},
      {9, "HP", 20, 2, 0.35, 0.60, "openssl-1.0.1",
       {"OfficeJet Printer", "LaserJet Printer", "Envy Printer"},
       {"hp.com", "hpeprint.com"}, false},
      {10, "Western Digital", 44, 1, 0.95, 0.75, "openssl-1.0.1",
       {"My Cloud", "My Cloud Home", "EX2 NAS"},
       {"mycloud.com", "wdc.com"}, false},
      {11, "Xiaomi", 22, 2, 0.35, 0.45, "openssl-1.0.2",
       {"Mi Box", "Mi Camera", "Mi Hub"}, {"mi.com", "xiaomi.com"}, false},
      {12, "Sony", 95, 3, 0.50, 0.60, "openssl-1.0.2",
       {"Bravia TV", "PlayStation 4", "PlayStation 3", "Soundbar", "Blu-ray Player"},
       {"playstation.net", "sonyentertainmentnetwork.com", "sony.com"}, false},
      {13, "Lutron", 10, 1, 0.25, 0.60, "polarssl-1.3",
       {"Caseta Bridge", "RA2 Hub"}, {"lutron.com"}, false, false, true},
      {14, "iDevices", 6, 1, 0.20, 0.35, "mbedtls-2.7",
       {"Smart Switch", "Smart Outlet"}, {"idevicesinc.com"}, false},
      {15, "TP-Link", 46, 2, 0.80, 0.70, "openssl-1.0.1",
       {"Kasa Plug", "Kasa Camera", "Smart Bulb", "Range Extender"},
       {"tplinkcloud.com", "tp-link.com"}, false},
      {16, "Vizio", 30, 2, 0.35, 0.55, "openssl-1.0.1",
       {"SmartCast TV", "Soundbar"}, {"vizio.com"}, false},
      {17, "Pioneer", 8, 1, 0.05, 0.55, "openssl-1.0.1",
       {"AV Receiver", "Network Player"}, {"pioneer-audio.com"}, false},
      {18, "Onkyo", 8, 1, 0.05, 0.55, "openssl-1.0.1",
       {"AV Receiver", "Stereo Amplifier"}, {"onkyo.com"}, false},
      {19, "wink", 14, 1, 0.30, 0.50, "openssl-1.0.1",
       {"Wink Hub", "Wink Hub 2"}, {"wink.com"}, false},
      {20, "LG", 72, 3, 0.45, 0.60, "openssl-1.0.2",
       {"webOS TV", "Smart Refrigerator", "Soundbar", "ThinQ Hub"},
       {"lgtvsdp.com", "lge.com", "lgthinq.com"}, false},
      {21, "Cisco", 10, 1, 0.35, 0.45, "openssl-1.0.2",
       {"IP Phone", "Telepresence"}, {"cisco.com", "webex.com"}, false},
      {22, "Philips", 42, 2, 0.40, 0.45, "openssl-1.0.2",
       {"Hue Bridge", "Hue Bulb", "Smart TV", "Air Purifier"},
       {"meethue.com", "philips.com"}, false},
      {23, "Synology", 60, 2, 0.95, 1.00, "openssl-1.0.1",
       {"DiskStation NAS", "RackStation", "Surveillance Station", "Router"},
       {"synology.com", "quickconnect.to"}, false},
      {24, "TiVo", 14, 1, 0.40, 0.60, "openssl-1.0.1",
       {"TiVo Bolt", "TiVo Roamio", "TiVo Mini"}, {"tivo.com"}, false},
      {25, "Wyze", 75, 1, 0.05, 0.35, "openssl-1.0.2",
       {"Wyze Cam", "Wyze Cam Pan", "Wyze Plug", "Wyze Bulb"},
       {"wyzecam.com", "wyze.com"}, false},
      {26, "Sonos", 52, 2, 0.30, 0.10, "openssl-1.1.0",
       {"One", "Beam", "Play:1", "Play:5", "Connect"},
       {"sonos.com", "ws.sonos.com"}, false},
      {27, "Amcrest", 6, 1, 0.30, 0.70, "openssl-1.0.0",
       {"IP Camera", "Video Doorbell"}, {"amcrestcloud.com"}, false, false, true},
      {28, "Panasonic", 13, 1, 0.35, 0.55, "openssl-1.0.1",
       {"Viera TV", "Network Camera"}, {"panasonic.com"}, false},
      {29, "QNAP", 9, 1, 0.60, 0.80, "openssl-1.0.1",
       {"TS NAS", "TVS NAS"}, {"qnap.com", "myqnapcloud.com"}, false, false, true},
      {30, "Fing", 5, 1, 0.20, 0.20, "openssl-1.1.0",
       {"Fingbox"}, {"fing.com"}, false},
      {31, "Brother", 9, 1, 0.10, 0.55, "openssl-1.0.1",
       {"Laser Printer", "Inkjet Printer"}, {"brother.com"}, false},
      {32, "Dish Network", 8, 1, 0.10, 0.60, "openssl-1.0.1",
       {"Hopper", "Joey", "Wally"}, {"dishaccess.tv", "dish.com"}, false},
      {33, "Skybell", 6, 1, 0.05, 0.45, "polarssl-1.3",
       {"Video Doorbell"}, {"skybell.com"}, false},
      {34, "NETGEAR", 10, 1, 0.05, 0.45, "openssl-1.0.2",
       {"Nighthawk Router", "Orbi", "Smart Switch"}, {"netgear.com"}, false},
      {35, "Arlo", 9, 1, 0.05, 0.40, "openssl-1.0.2",
       {"Arlo Camera", "Arlo Pro", "Arlo Base Station"}, {"arlo.com"}, false},
      {36, "iRobot", 9, 1, 0.25, 0.35, "openssl-1.0.2",
       {"Roomba", "Braava"}, {"irobotapi.com"}, false},
      {37, "Yamaha", 6, 1, 0.25, 0.40, "openssl-1.0.2",
       {"MusicCast Receiver", "Soundbar"}, {"yamaha.com"}, false, false, true},
      {38, "Texas Instruments", 5, 1, 0.05, 0.45, "polarssl-1.3",
       {"SimpleLink DevKit", "Sensor Tag"}, {"ti.com"}, false},
      {39, "Tesla", 4, 1, 0.25, 0.30, "openssl-1.1.0",
       {"Powerwall", "Wall Connector"}, {"tesla.services", "tesla.com"}, false},
      {40, "Bose", 13, 1, 0.10, 0.35, "openssl-1.0.2",
       {"SoundTouch", "Home Speaker", "Soundbar"}, {"bose.com"}, false},
      {41, "Sky", 6, 1, 0.30, 0.50, "openssl-1.0.1",
       {"Sky Q Box", "Sky Hub"}, {"sky.com"}, false, false, true},
      {42, "Humax", 4, 1, 0.30, 0.55, "openssl-1.0.1",
       {"Set-top Box"}, {"humaxdigital.com"}, false, false, true},
      {43, "Ubiquity", 7, 1, 0.40, 0.30, "openssl-1.1.0",
       {"UniFi AP", "EdgeRouter", "Cloud Key"}, {"ubnt.com", "ui.com"}, false},
      {44, "Logitech", 8, 1, 0.30, 0.40, "openssl-1.0.2",
       {"Harmony Hub", "Circle Camera"}, {"logitech.com", "myharmony.com"}, false, false, true},
      {45, "Netatmo", 16, 1, 0.35, 0.60, "openssl-1.0.1",
       {"Weather Station", "Indoor Camera", "Thermostat"}, {"netatmo.net"}, false},
      {46, "SiliconDust", 4, 0, 0.00, 0.35, "openssl-1.0.2",
       {"HDHomeRun Prime"}, {}, false},
      {47, "HDHomeRun", 4, 0, 0.00, 0.35, "openssl-1.0.2",
       {"HDHomeRun Connect", "HDHomeRun Extend"}, {}, false},
      {48, "Sense", 4, 1, 0.05, 0.35, "polarssl-1.3",
       {"Energy Monitor"}, {"sense.com"}, false},
      {49, "DirecTV", 5, 1, 0.30, 0.55, "openssl-1.0.1",
       {"Genie", "Mini Genie"}, {"dtvce.com", "directv.com"}, false},
      {50, "Denon", 5, 1, 0.10, 0.50, "openssl-1.0.1",
       {"AVR Receiver", "HEOS Speaker"}, {"denon.com"}, false},
      {51, "Marantz", 4, 1, 0.10, 0.50, "openssl-1.0.1",
       {"AV Receiver"}, {"marantz.com"}, false},
      {52, "Nanoleaf", 4, 1, 0.20, 0.25, "mbedtls-2.7",
       {"Light Panels", "Canvas"}, {"nanoleaf.me"}, false},
      {53, "VMware", 3, 1, 0.35, 0.30, "openssl-1.1.0",
       {"ESXi Host"}, {"vmware.com"}, false, false, true},
      {54, "Obihai", 4, 1, 0.20, 0.55, "openssl-1.0.1",
       {"OBi200 VoIP", "OBi202 VoIP"}, {"obitalk.com"}, false, true},
      {55, "Canary", 4, 1, 0.20, 0.35, "openssl-1.0.2",
       {"Canary All-in-One", "Canary Flex"}, {"canaryis.com"}, false, true},
      {56, "ecobee", 11, 1, 0.25, 0.30, "openssl-1.0.2",
       {"Thermostat", "Switch+"}, {"ecobee.com"}, false},
      {57, "Epson", 5, 1, 0.30, 0.55, "openssl-1.0.1",
       {"WorkForce Printer", "EcoTank Printer"}, {"epsonconnect.com"}, false, false, true},
      {58, "IKEA", 6, 1, 0.25, 0.30, "openssl-1.0.2",
       {"Tradfri Gateway", "Symfonisk Speaker"}, {"ikea.com"}, false},
      {59, "Belkin", 24, 1, 0.20, 1.00, "openssl-1.0.0",
       {"Wemo Switch", "Wemo Plug", "Wemo Motion"}, {"belkin.com", "xbcs.net"}, false},
      {60, "Nintendo", 16, 1, 0.25, 0.35, "openssl-1.0.2",
       {"Switch", "Wii U", "3DS"}, {"nintendo.net"}, false},
      {61, "Sleep number", 3, 1, 0.20, 0.40, "openssl-1.0.2",
       {"Smart Bed Hub"}, {"sleepiq.sleepnumber.com"}, false, false, true},
      {62, "Tuya", 4, 1, 0.20, 0.50, "mbedtls-2.7",
       {"Smart Plug", "Smart Bulb"}, {"tuyaus.com", "tuya.com"}, false, true},
      {63, "Canon", 4, 1, 0.30, 0.55, "openssl-1.0.1",
       {"PIXMA Printer", "imageCLASS Printer"}, {"c-ij.com"}, false, false, true},
      {64, "Vera", 3, 1, 0.25, 0.50, "openssl-1.0.1",
       {"VeraEdge Hub"}, {"getvera.com"}, false, false, true},
      {65, "Withings", 4, 1, 0.25, 0.30, "openssl-1.0.2",
       {"Body Scale", "Sleep Mat"}, {"withings.net"}, false, false, true},
  };

  // Re-balance so the total is exactly 2,014 devices: any residual is
  // absorbed by the largest vendor (Amazon).
  int sum = 0;
  for (const VendorSpec& v : t) sum += v.devices;
  for (VendorSpec& v : t) {
    if (v.name == "Amazon") {
      v.devices += 2014 - sum;
      break;
    }
  }
  return t;
}

}  // namespace

const std::vector<VendorSpec>& vendor_table() {
  static const std::vector<VendorSpec> table = build_table();
  return table;
}

const VendorSpec& vendor(const std::string& name) {
  for (const VendorSpec& v : vendor_table()) {
    if (v.name == name) return v;
  }
  throw std::out_of_range("unknown vendor: " + name);
}

int total_devices() {
  int sum = 0;
  for (const VendorSpec& v : vendor_table()) sum += v.devices;
  return sum;
}

}  // namespace iotls::devicesim

// Core dataset types: the synthetic analogue of the IoT Inspector capture.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace iotls::devicesim {

/// One labelled device, as IoT Inspector's user labels describe it (§3).
struct Device {
  std::string id;        // stable unique id, e.g. "amazon-echo-0042"
  std::string vendor;    // manufacturer label ("Amazon")
  std::string type;      // device type/model label ("Echo")
  std::string user_id;   // owning user ("user-0317")
};

/// One observed TLS ClientHello with its capture metadata. `wire` holds the
/// record-layer bytes exactly as a capture would; the analysis pipeline
/// parses fingerprints out of these bytes, never out of generator state.
struct ClientHelloEvent {
  std::string device_id;
  std::int64_t day = 0;  // capture timestamp (days since epoch)
  std::string sni;       // also recoverable from the bytes; kept for indexing
  Bytes wire;            // TLS records carrying the ClientHello
};

/// The generated crowdsourced dataset.
struct FleetDataset {
  std::vector<Device> devices;
  std::vector<ClientHelloEvent> events;
  std::vector<std::string> users;

  const Device* find_device(const std::string& id) const;
};

}  // namespace iotls::devicesim

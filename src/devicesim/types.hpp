// Core dataset types: the synthetic analogue of the IoT Inspector capture.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bytes.hpp"

namespace iotls::devicesim {

/// One labelled device, as IoT Inspector's user labels describe it (§3).
struct Device {
  std::string id;        // stable unique id, e.g. "amazon-echo-0042"
  std::string vendor;    // manufacturer label ("Amazon")
  std::string type;      // device type/model label ("Echo")
  std::string user_id;   // owning user ("user-0317")
};

/// One observed TLS ClientHello with its capture metadata. `wire` holds the
/// record-layer bytes exactly as a capture would; the analysis pipeline
/// parses fingerprints out of these bytes, never out of generator state.
struct ClientHelloEvent {
  std::string device_id;
  std::int64_t day = 0;  // capture timestamp (days since epoch)
  std::string sni;       // also recoverable from the bytes; kept for indexing
  Bytes wire;            // TLS records carrying the ClientHello
};

/// The generated crowdsourced dataset.
struct FleetDataset {
  std::vector<Device> devices;
  std::vector<ClientHelloEvent> events;
  std::vector<std::string> users;

  /// Lookup by device id. O(1) amortized: backed by a lazily (re)built hash
  /// index — the first lookup after `devices` grows rebuilds it, so callers
  /// may freely interleave appends and lookups (fleet-scale imports do).
  const Device* find_device(const std::string& id) const;

 private:
  void rebuild_device_index() const;

  // Index entries key on owned strings (not views into `devices`): vector
  // growth moves the Device strings, which would dangle any view keys.
  mutable std::unordered_map<std::string, std::size_t> device_index_;
  mutable std::size_t indexed_count_ = 0;
};

}  // namespace iotls::devicesim

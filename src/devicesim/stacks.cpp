#include "devicesim/stacks.hpp"

#include <algorithm>
#include <set>

#include "tls/ciphersuite.hpp"
#include "tls/grease.hpp"

namespace iotls::devicesim {

namespace {

/// Mild legacy suites a sloppy vendor build may drag in (3DES/RC4/DES era).
const std::vector<std::uint16_t>& legacy_pool() {
  static const std::vector<std::uint16_t> pool = {
      0x000a,  // RSA 3DES
      0xc012,  // ECDHE_RSA 3DES
      0x0016,  // DHE_RSA 3DES
      0x0005,  // RSA RC4_128 SHA
      0x0004,  // RSA RC4_128 MD5
      0x0009,  // RSA DES
      0x0015,  // DHE_RSA DES
      0x0096,  // SEED
      0x0041,  // Camellia 128
  };
  return pool;
}

/// Severe classes (§4.2's footnote set): anonymous kex, export, NULL, RC2.
const std::vector<std::uint16_t>& severe_pool() {
  static const std::vector<std::uint16_t> pool = {
      0x0001,  // RSA NULL MD5
      0x0003,  // RSA EXPORT RC4_40
      0x0006,  // RSA EXPORT RC2_40
      0x0034,  // DH_anon AES128
      0x0018,  // DH_anon RC4_128
      0x002b,  // KRB5_EXPORT RC4_40 MD5
      0xc017,  // ECDH_anon 3DES
  };
  return pool;
}

bool is_severe_suite(std::uint16_t code) {
  tls::CipherSuiteInfo info = tls::suite_info(code);
  if (tls::is_anon(info.kex_auth) || tls::is_export_grade(info)) return true;
  return info.cipher == tls::Cipher::kNull || info.cipher == tls::Cipher::kRc2Cbc40;
}

/// Extensions a customization may toggle (never server_name).
const std::vector<std::uint16_t>& extension_pool() {
  static const std::vector<std::uint16_t> pool = {
      5, 13, 15, 16, 18, 21, 22, 23, 35, 0x3374, 0xff01,
  };
  return pool;
}

bool contains(const std::vector<std::uint16_t>& v, std::uint16_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

VendorQuirks quirks_for(const std::string& vendor_name) {
  // The 14 vendors whose devices propose anonymous/export/NULL suites
  // (§4.2 footnote 4).
  static const std::set<std::string> kSevereVendors = {
      "Synology", "Western Digital", "TP-Link", "Sony", "Amazon", "HP", "LG",
      "Samsung", "QNAP", "Vizio", "Philips", "Lutron", "Amcrest", "Google"};
  VendorQuirks quirks;
  quirks.severe_allowed = kSevereVendors.count(vendor_name) > 0;
  // App. B.8: Belkin devices put RC4_128 first; Synology is the only vendor
  // fronting DH_anon / KRB5_EXPORT suites (in a subset of its stacks).
  if (vendor_name == "Belkin") {
    quirks.front_suites = {0x0005};
  } else if (vendor_name == "Synology") {
    quirks.front_suites = {0x0034, 0x002b};
    quirks.front_probability = 0.3;
  }
  return quirks;
}

corpus::EraConfig mutate_era(const corpus::EraConfig& base, Rng& rng,
                             double sloppiness, const VendorQuirks& quirks) {
  corpus::EraConfig out = base;

  // 1. Scrub or keep vulnerable suites according to sloppiness. Severe
  //    classes (anon/export/NULL/RC2) are scrubbed aggressively and survive
  //    only in the builds of the few vendors known for them (§4.2 fn. 4);
  //    the milder legacy tail (3DES/RC4/DES) lingers much more readily.
  double keep_3des = sloppiness * 0.38;   // 3DES lingers longest (§4.2)
  double keep_mild = sloppiness * 0.18;
  double keep_severe = quirks.severe_allowed ? sloppiness * 0.18 : 0.0;
  std::erase_if(out.suites, [&](std::uint16_t s) {
    if (tls::classify_suite(s) != tls::SecurityLevel::kVulnerable) return false;
    double keep = keep_mild;
    if (is_severe_suite(s)) keep = keep_severe;
    else if (tls::suite_info(s).cipher == tls::Cipher::kTripleDesEdeCbc)
      keep = keep_3des;
    return !rng.chance(keep);
  });

  // 2. Sloppy builds drag extra legacy suites in (ported configs, vendored
  //    library forks); severe additions stay rare and vendor-gated.
  int extra = 0;
  if (rng.chance(sloppiness * 0.35)) extra = 1 + static_cast<int>(rng.uniform(0, 1));
  for (int i = 0; i < extra; ++i) {
    std::uint16_t pick = rng.pick(legacy_pool());
    if (!contains(out.suites, pick)) out.suites.push_back(pick);
  }
  if (quirks.severe_allowed && rng.chance(sloppiness * 0.08)) {
    std::uint16_t pick = rng.pick(severe_pool());
    if (!contains(out.suites, pick)) out.suites.push_back(pick);
  }

  // 2b. Key-length trimming: constrained builds frequently keep only one
  //     AES key size. This moves the stack from "same components" to
  //     "similar components" relative to its parent library (App. B.2's
  //     dominant category).
  if (rng.chance(0.45)) {
    bool drop_128 = rng.chance(0.5);
    std::erase_if(out.suites, [&](std::uint16_t s) {
      tls::Cipher c = tls::suite_info(s).cipher;
      if (drop_128) {
        return c == tls::Cipher::kAes128Cbc || c == tls::Cipher::kAes128Gcm;
      }
      return c == tls::Cipher::kAes256Cbc || c == tls::Cipher::kAes256Gcm;
    });
  }

  // 3. Structural churn: drop a couple of mid-list suites, swap neighbours.
  int drops = static_cast<int>(rng.uniform(0, 2));
  for (int i = 0; i < drops && out.suites.size() > 4; ++i) {
    std::size_t pos = static_cast<std::size_t>(
        rng.uniform(1, out.suites.size() - 2));
    out.suites.erase(out.suites.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  if (out.suites.size() > 3 && rng.chance(0.6)) {
    std::size_t pos = static_cast<std::size_t>(
        rng.uniform(1, out.suites.size() - 2));
    std::swap(out.suites[pos], out.suites[pos + 1]);
  }

  // 4. Extension churn: toggle one or two optional extensions. server_name
  //    is always present — every stack in our fleet names its peer.
  if (!contains(out.extensions, 0)) out.extensions.insert(out.extensions.begin(), 0);
  int ext_moves = 1 + static_cast<int>(rng.uniform(0, 1));
  for (int i = 0; i < ext_moves; ++i) {
    std::uint16_t ext = rng.pick(extension_pool());
    auto it = std::find(out.extensions.begin(), out.extensions.end(), ext);
    if (it == out.extensions.end()) {
      out.extensions.push_back(ext);
    } else if (out.extensions.size() > 2) {
      out.extensions.erase(it);
    }
  }

  // 4b. Legacy ordering habit: a sloppy build occasionally promotes one of
  //     its vulnerable members to the most-preferred slot (App. B.7 finds
  //     devices of 13 vendors doing this).
  if (sloppiness > 0.55 && rng.chance((sloppiness - 0.55) * 0.35)) {
    for (std::size_t i = 1; i < out.suites.size(); ++i) {
      if (tls::classify_suite(out.suites[i]) == tls::SecurityLevel::kVulnerable) {
        std::uint16_t promoted = out.suites[i];
        out.suites.erase(out.suites.begin() + static_cast<std::ptrdiff_t>(i));
        out.suites.insert(out.suites.begin(), promoted);
        break;
      }
    }
  }

  // 5. Renegotiation SCSV is a common tail marker in embedded builds; a few
  //    stacks also advertise TLS_FALLBACK_SCSV (B.3.1: 20 devices, 6 vendors).
  if (rng.chance(0.5) && !contains(out.suites, 0x00ff)) out.suites.push_back(0x00ff);
  if (rng.chance(0.005) && !contains(out.suites, 0x5600))
    out.suites.push_back(0x5600);

  // 5b. A handful of builds negotiate TLS 1.1 as their ceiling (Table 12
  //     counts 18 such proposals in 5,499).
  if (out.version == 0x0303 && rng.chance(0.004)) out.version = 0x0302;

  // 6. Vendor quirks: force specific suites into front position.
  if (!quirks.front_suites.empty() && rng.chance(quirks.front_probability)) {
    for (auto it = quirks.front_suites.rbegin(); it != quirks.front_suites.rend();
         ++it) {
      std::erase(out.suites, *it);
      out.suites.insert(out.suites.begin(), *it);
    }
  }

  return out;
}

tls::ClientHello hello_from_stack(const TlsStack& stack, const std::string& sni,
                                  unsigned connection_index) {
  tls::ClientHello ch;
  ch.legacy_version = std::min<std::uint16_t>(stack.config.version, 0x0303);
  Rng rng(fnv1a64(stack.name + "|" + sni) + connection_index);
  for (auto& b : ch.random) b = static_cast<std::uint8_t>(rng.uniform(0, 255));

  ch.cipher_suites = stack.config.suites;
  if (stack.grease_suites) {
    ch.cipher_suites.insert(ch.cipher_suites.begin(),
                            tls::grease_value(connection_index));
  }

  ch.extensions.clear();
  bool has_supported_versions = false;
  for (std::uint16_t type : stack.config.extensions) {
    tls::Extension e;
    e.type = type;
    if (type == 43) {
      // supported_versions carries the stack's max version (TLS 1.3 stacks).
      e.data = {0x02, static_cast<std::uint8_t>(stack.config.version >> 8),
                static_cast<std::uint8_t>(stack.config.version & 0xff)};
      has_supported_versions = true;
    }
    ch.extensions.push_back(std::move(e));
  }
  if (stack.config.version > 0x0303 && !has_supported_versions) {
    ch.extensions.push_back(
        {43, {0x02, static_cast<std::uint8_t>(stack.config.version >> 8),
              static_cast<std::uint8_t>(stack.config.version & 0xff)}});
  }
  if (stack.grease_extensions) {
    ch.extensions.push_back({tls::grease_value(connection_index + 5), {}});
  }
  ch.set_sni(sni);
  return ch;
}

const std::vector<SharedStackSpec>& shared_stack_table() {
  // Encodes the company relationships of Table 4 and the server-tied
  // fingerprints of Table 5. SNIs here are the servers the stack is tied to.
  static const std::vector<SharedStackSpec> table = {
      // Same company, different brands.
      {"sdk:hdhomerun-fw", "openssl-1.0.2", 0.3,
       {{"HDHomeRun", 1.0}, {"SiliconDust", 1.0}},
       {"api.hdhomerun.com", "dl.hdhomerun.com"}},
      {"sdk:hdhomerun-guide", "openssl-1.0.2", 0.2,
       {{"HDHomeRun", 1.0}, {"SiliconDust", 1.0}},
       {"my.hdhomerun.com"}},
      {"sdk:arlo-cloud", "openssl-1.0.2", 0.25,
       {{"Arlo", 0.9}, {"NETGEAR", 0.55}},
       {"updates.arlo.com", "backend.arlo.com"}},
      {"sdk:netgear-cloud", "openssl-1.0.2", 0.3,
       {{"Arlo", 0.45}, {"NETGEAR", 0.8}},
       {"api.netgear.com"}},
      // Roku co-op TVs (Insignia/Sharp/TCL run Roku OS).
      {"sdk:roku-os", "openssl-1.0.1", 0.15,
       {{"Roku", 0.92}, {"Insignia", 0.85}, {"Sharp", 0.8}, {"TCL", 0.85}},
       {"api.roku.com", "cooper.roku.com", "scribe.roku.com", "channels.roku.com",
        "image.roku.com", "assets.roku.com", "fwupdate.roku.com", "oauth.roku.com"}},
      {"sdk:roku-os-legacy", "openssl-1.0.1", 0.95,
       {{"Roku", 0.3}, {"Insignia", 0.28}, {"Sharp", 0.25}, {"TCL", 0.28}},
       {"legacy.roku.com", "time.roku.com", "logs.roku.com", "ads.roku.com",
        "cdn.roku.com", "pay.roku.com"}},
      {"app:mgo", "openssl-1.0.1", 0.2,
       {{"Roku", 0.28}, {"Insignia", 0.3}, {"Sharp", 0.3}, {"TCL", 0.3}},
       {"www.mgo.com", "api.mgo.com"}},
      {"app:mgo-images", "openssl-1.0.1", 1.0,
       {{"Roku", 0.28}, {"Insignia", 0.3}, {"Sharp", 0.3}, {"TCL", 0.3}},
       {"img1.mgo-images.com", "img2.mgo-images.com"}},
      {"app:ravm", "openssl-1.0.1", 1.0,
       {{"Roku", 0.25}, {"Insignia", 0.3}, {"TCL", 0.3}},
       {"cdn.ravm.tv"}},
      {"sdk:roku-screensaver", "openssl-1.0.1", 0.2,
       {{"Roku", 0.5}, {"Insignia", 0.5}, {"Sharp", 0.55}, {"TCL", 0.5}},
       {"themes.roku.com"}},
      // Cooperation: Sonos-enabled speakers (Amazon/IKEA build them too),
      // with Pandora behind Sonos' service.
      {"sdk:sonos", "openssl-1.1.0", 0.1,
       {{"Sonos", 0.95}, {"IKEA", 0.85}, {"Amazon", 0.08}},
       {"api.sonos.com", "ws.sonos.com", "msmetrics.ws.sonos.com",
        "update.sonos.com", "service-catalog.ws.sonos.com"}},
      {"app:pandora", "openssl-1.1.0", 0.15,
       {{"Sonos", 0.35}, {"Amazon", 0.015}},
       {"api.pandora.com"}},
      // Third-party applications.
      {"app:netflix-nrdp", "openssl-1.0.2", 0.2,
       {{"Amazon", 0.008}, {"LG", 0.045}},
       {"oca1.nflxvideo.net", "oca2.nflxvideo.net", "oca3.nflxvideo.net",
        "oca4.nflxvideo.net", "oca5.nflxvideo.net"}},
      {"sdk:cast4audio", "openssl-1.0.1", 0.9,
       {{"Onkyo", 0.85}, {"Pioneer", 0.85}},
       {"sync.cast4.audio"}},
      {"sdk:gcast", "openssl-1.1.0", 0.1,
       {{"Nvidia", 0.5}, {"Sony", 0.25}},
       {"clients3.googleapis.com"}},
      // Partnered / same-parent pairs of Table 4.
      {"sdk:heos", "openssl-1.0.1", 0.5,
       {{"Denon", 0.9}, {"Marantz", 0.9}},
       {"api.skyegloup.com"}},
      {"sdk:ti-simplelink", "polarssl-1.3", 0.4,
       {{"Texas Instruments", 0.9}, {"Bose", 0.5}, {"Skybell", 0.55},
        {"Sense", 0.6}},
       {"sdk.ti.com"}},
      {"sdk:dish-video", "openssl-1.0.1", 0.55,
       {{"Dish Network", 0.55}, {"Skybell", 0.45}},
       {"events.dishaccess.tv"}},
      {"sdk:androidtv", "openssl-1.1.0", 0.15,
       {{"Nvidia", 0.55}, {"Xiaomi", 0.6}},
       {"android.clients.googleapis.com"}},
      {"sdk:nas-backup", "openssl-1.0.0", 0.85,
       {{"Synology", 0.35}, {"Western Digital", 0.45}},
       {"relay.nasbackup.net"}},
      {"app:office-print", "openssl-1.0.1", 0.45,
       {{"Brother", 0.75}, {"Sharp", 0.35}, {"TCL", 0.28}},
       {"print.officecloud.net"}},
      {"sdk:aws-iot", "openssl-1.0.2", 0.25,
       {{"Arlo", 0.4}, {"iRobot", 0.55}},
       {"api.awscloudiot.net"}},
  };

  // Deliberately leaked singleton; held through a pointer (not a reference)
  // so LeakSanitizer sees it as reachable.
  static const std::vector<SharedStackSpec>* full = [] {
    auto* v = new std::vector<SharedStackSpec>(table);
    // The NAS ecosystem: Synology and Western Digital ship many firmware
    // builds from the same upstream NAS platform — the mechanism behind
    // their Table-4 overlap despite both having large fingerprint estates.
    for (int i = 0; i < 26; ++i) {
      SharedStackSpec spec;
      spec.name = "sdk:nas-fleet-" + std::to_string(i);
      spec.era = "openssl-1.0.0";
      spec.sloppiness = 0.9;
      spec.vendors = {{"Synology", 0.16}, {"Western Digital", 0.20}};
      spec.snis = {"relay.nasbackup.net"};
      v->push_back(std::move(spec));
    }
    return v;
  }();
  return *full;
}

TlsStack materialize_shared_stack(const SharedStackSpec& spec,
                                  const corpus::LibraryCorpus& corpus) {
  TlsStack stack;
  stack.name = spec.name;
  Rng rng(fnv1a64("shared-stack:" + spec.name));
  stack.config = mutate_era(corpus.era(spec.era), rng, spec.sloppiness);
  stack.snis = spec.snis;
  return stack;
}

}  // namespace iotls::devicesim

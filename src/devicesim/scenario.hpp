// The server-side world: domain universe, CAs, trust stores, CT logs.
//
// Substitution (DESIGN.md §2): the paper probes 1,151 live IoT servers; we
// declare an equivalent universe of servers — who owns each, who issued its
// certificate, its validity window, how its chain is (mis)configured, CT
// policy, geo behaviour — and build a simulated internet serving real
// encoded chains. The declarations mirror the paper's reported structure
// (Fig. 5 issuer mix, Tables 7/8/9/14/15/16); every §5 result is then
// *measured* by probing and validating, not copied.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ct/ctlog.hpp"
#include "net/internet.hpp"
#include "x509/authority.hpp"
#include "x509/truststore.hpp"
#include "x509/validation.hpp"

namespace iotls::devicesim {

/// How a server's served chain is shaped.
enum class ChainShape {
  kFull,                 // leaf + intermediate + root (root in a store if public)
  kOmitRoot,             // leaf + intermediate; root findable in stores
  kMissingIntermediate,  // leaf only, though an intermediate signed it
  kLeafOnly,             // leaf signed directly by a (private) root, root absent
  kPrivateRoot2,         // leaf + private self-signed root
  kPrivateRoot3,         // leaf + intermediate + private root
  kPrivateRoot4,         // leaf + 2 intermediates + private root
  kPrivateViaPublicRoot, // private-CA leaf chaining to a *public* root (Netflix)
  kSelfSigned,           // the leaf itself is self-signed
  kDoubleSelfSigned,     // two identical self-signed certs (samsunghrm pattern)
};

/// Declaration of one server (FQDN).
struct ServerSpec {
  std::string fqdn;
  std::string owner_org;      // operator ("Amazon", "Netflix", "Tuya", ...)
  std::string issuer_org;     // leaf issuer organization (Fig. 5 y-axis)
  bool issuer_public = true;  // public-trust CA vs private CA
  ChainShape shape = ChainShape::kOmitRoot;
  std::int64_t not_before = 0;
  std::int64_t not_after = 0;
  bool cn_mismatch = false;   // leaf CN/SAN deliberately excludes the fqdn
  bool ct_logged = true;      // submit to CT at issuance
  bool reachable = true;
  int ip_count = 1;
  std::string cert_group;     // non-empty: share one leaf across the group
  std::vector<std::string> tags;  // visitation tags ("vendor:Amazon", "tv", ...)
  bool vary_by_vantage = false;   // CDN: distinct leaf per vantage point
  /// Serve the chain in the wrong order (a common misconfiguration that
  /// tolerant validators repair; exercises normalize_chain_order).
  bool shuffled_chain = false;
};

/// The declared universe of IoT servers.
class ServerUniverse {
 public:
  /// Build the standard universe (~1,194 SNIs mirroring §5.1/Table 15).
  static ServerUniverse standard();

  const std::vector<ServerSpec>& specs() const { return specs_; }
  std::size_t size() const { return specs_.size(); }

  /// FQDNs carrying a tag, e.g. "vendor:Amazon", "tv", "cloud".
  std::vector<std::string> fqdns_with_tag(const std::string& tag) const;

  const ServerSpec* find(const std::string& fqdn) const;

 private:
  void add(ServerSpec spec);

  std::vector<ServerSpec> specs_;
  std::map<std::string, std::size_t> by_fqdn_;
  std::map<std::string, std::vector<std::string>> by_tag_;
};

/// A fully built world: internet + PKI + CT, ready for probing/validation.
struct SimWorld {
  net::SimInternet internet;
  x509::KeyRegistry keys;
  x509::TrustStoreSet trust;
  std::vector<std::unique_ptr<ct::CtLog>> logs;
  ct::CtIndex ct_index;
  /// Issuer organization -> is it a public-trust CA? (the CCADB analogue
  /// the paper consults in §5.2).
  std::map<std::string, bool> issuer_is_public;
};

/// Build the world from a universe. Deterministic.
SimWorld build_world(const ServerUniverse& universe);

}  // namespace iotls::devicesim

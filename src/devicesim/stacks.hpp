// TLS stacks: the unit of fingerprint customization and sharing.
//
// The paper's central observation is that a device's fingerprints come from
// the *stacks* running on it: the vendor's customized base library, plus
// stacks brought in by shared supply chains (SDKs of partnered companies)
// and by third-party applications (§4.4). We model exactly that: a stack is
// a named ClientHello configuration plus the set of servers it talks to.
#pragma once

#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "tls/clienthello.hpp"
#include "util/rng.hpp"

namespace iotls::devicesim {

/// One TLS stack installed on a device.
struct TlsStack {
  std::string name;            // e.g. "Amazon/base-1", "sdk:sonos"
  corpus::EraConfig config;    // version + suites + extension types
  std::vector<std::string> snis;  // servers this stack contacts
  bool grease_suites = false;
  bool grease_extensions = false;
};

/// Vendor-specific mutation quirks (App. B.8): e.g. all Belkin devices
/// propose RC4_128 first; Synology devices propose DH_anon / KRB5_EXPORT
/// suites in front position.
struct VendorQuirks {
  std::vector<std::uint16_t> front_suites;  // forced to the head, in order
  double front_probability = 1.0;           // chance a stack gets the fronts
  /// May this vendor's builds retain/introduce the *severe* vulnerable
  /// classes (anonymous kex, export-grade, NULL, RC2)? §4.2 finds those in
  /// only 31 fingerprints from 14 vendors; everyone keeps the milder legacy
  /// tail (3DES/RC4/DES) far more often.
  bool severe_allowed = false;
};

/// Quirks for a vendor name (empty defaults for most vendors).
VendorQuirks quirks_for(const std::string& vendor_name);

/// Derive a customized variant of a library era. Deterministic in `rng`.
/// `sloppiness` in [0,1] drives how many vulnerable suites survive or get
/// (re)introduced: 0 scrubs the list to modern suites, 1 keeps and even
/// extends the legacy tail. The result differs from `base` with very high
/// probability, modelling the ~97% of device fingerprints that match no
/// known library (§4.1).
corpus::EraConfig mutate_era(const corpus::EraConfig& base, Rng& rng,
                             double sloppiness, const VendorQuirks& quirks = {});

/// Build the ClientHello a stack produces when contacting `sni` — the order
/// of extensions follows the stack's configured list; GREASE values are
/// injected (rotating by `connection_index`) when the stack advertises them.
tls::ClientHello hello_from_stack(const TlsStack& stack, const std::string& sni,
                                  unsigned connection_index);

/// A shared stack available to several vendors (shared supply chain or
/// shared application, §4.4).
struct SharedStackSpec {
  std::string name;
  std::string era;          // corpus era the stack derives from
  double sloppiness = 0.3;  // vulnerability character of the stack
  /// (vendor, adoption probability per device) pairs.
  std::vector<std::pair<std::string, double>> vendors;
  std::vector<std::string> snis;  // the servers tied to this stack (Table 5)
};

/// The full table of shared stacks encoding Table 4's company relationships
/// and Table 5's server-tied fingerprints.
const std::vector<SharedStackSpec>& shared_stack_table();

/// Materialize a shared stack spec into a concrete TlsStack (deterministic).
TlsStack materialize_shared_stack(const SharedStackSpec& spec,
                                  const corpus::LibraryCorpus& corpus);

}  // namespace iotls::devicesim

#include "devicesim/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "devicesim/stacks.hpp"
#include "devicesim/vendors.hpp"
#include "util/dates.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace iotls::devicesim {

namespace {

std::int64_t d(int y, int m, int day) { return days(y, m, day); }

/// Public-trust issuer organizations (roots in major stores).
const std::vector<std::string>& public_issuers() {
  static const std::vector<std::string> v = {
      "DigiCert",        "Let's Encrypt",  "Sectigo",
      "Amazon",          "Google Trust Services", "GoDaddy",
      "GlobalSign",      "Microsoft Corporation", "Apple",
      "Entrust",         "Cloudflare",     "COMODO",
      "Gandi",           "Starfield",      "IdenTrust",
      "VeriSign Class 3 Public Primary Certification",
  };
  return v;
}

/// Private CAs — device vendors (and Netflix) signing their own domains.
const std::vector<std::string>& private_issuers() {
  static const std::vector<std::string> v = {
      "Roku",          "Samsung Electronics",
      "Nintendo",      "Sony Computer Entertainment",
      "Tesla Motor Services", "Nest Labs",
      "Sense Labs",    "ATT Mobility and Entertainment",
      "LG Electronics", "Canary Connect",
      "Philips",       "Obihai Technology",
      "EchoStar",      "Tuya",
      "Universal Electronics", "ecobee",
      "Netflix",
  };
  return v;
}

/// Rotating issuer assignment for long-tail public servers, weighted to
/// approximate Fig. 5's issuer mix (DigiCert ~47% of leaves).
std::string tail_issuer(std::size_t i) {
  static const std::vector<std::pair<std::string, int>> weights = {
      {"DigiCert", 58},      {"Let's Encrypt", 14},
      {"Sectigo", 7},        {"Amazon", 7},
      {"GoDaddy", 4},        {"GlobalSign", 4},
      {"Google Trust Services", 3}, {"Entrust", 2},
      {"Cloudflare", 2},     {"Starfield", 2},
  };
  int total = 0;
  for (const auto& [name, w] : weights) total += w;
  int slot = static_cast<int>((i * 37) % static_cast<std::size_t>(total));
  for (const auto& [name, w] : weights) {
    if (slot < w) return name;
    slot -= w;
  }
  return "DigiCert";
}

}  // namespace

void ServerUniverse::add(ServerSpec spec) {
  if (by_fqdn_.count(spec.fqdn) > 0) return;  // first declaration wins
  by_fqdn_[spec.fqdn] = specs_.size();
  for (const std::string& tag : spec.tags) by_tag_[tag].push_back(spec.fqdn);
  specs_.push_back(std::move(spec));
}

std::vector<std::string> ServerUniverse::fqdns_with_tag(const std::string& tag) const {
  auto it = by_tag_.find(tag);
  return it == by_tag_.end() ? std::vector<std::string>{} : it->second;
}

const ServerSpec* ServerUniverse::find(const std::string& fqdn) const {
  auto it = by_fqdn_.find(fqdn);
  return it == by_fqdn_.end() ? nullptr : &specs_[it->second];
}

ServerUniverse ServerUniverse::standard() {
  ServerUniverse u;
  Rng rng(0x5eed0001);

  // Public certificate vintages (as of the April 2022 probe).
  const std::int64_t nb_2021 = d(2021, 9, 1);
  const std::int64_t na_2021 = nb_2021 + 397;
  const std::int64_t nb_le = d(2022, 2, 20);
  const std::int64_t na_le = nb_le + 90;

  // Helper: add `count` FQDNs under one SLD, wildcard-grouped every
  // `group_size` names.
  auto add_sld = [&](const std::string& sld, int count, const std::string& owner,
                     const std::string& issuer, std::vector<std::string> tags,
                     int group_size, bool short_lived = false,
                     const char* const* names = nullptr, int names_n = 0) {
    for (int i = 0; i < count; ++i) {
      ServerSpec s;
      s.fqdn = (i < names_n) ? std::string(names[i]) + "." + sld
                             : "svc" + std::to_string(i) + "." + sld;
      s.owner_org = owner;
      s.issuer_org = issuer;
      s.issuer_public = true;
      s.shape = ChainShape::kOmitRoot;
      s.not_before = short_lived ? nb_le : nb_2021;
      s.not_after = short_lived ? na_le : na_2021;
      s.ip_count = 1 + static_cast<int>(rng.uniform(0, 4));
      if (group_size > 1) {
        s.cert_group = sld + "#g" + std::to_string(i / group_size);
      }
      s.tags = tags;
      s.vary_by_vantage = false;
      u.add(std::move(s));
    }
  };

  static const char* kSvcNames[] = {
      "api",    "cloud",   "device-metrics", "updates", "auth",
      "events", "cdn",     "telemetry",      "push",    "time",
      "ota",    "config",  "logs",           "media",   "assets",
      "portal", "gateway", "registry",       "sync",    "edge"};

  // --------------------------------------------------------- Table 15 SLDs
  add_sld("amazon.com", 57, "Amazon", "DigiCert", {"vendor:Amazon", "cloud"},
          4, false, kSvcNames, 20);
  add_sld("google.com", 24, "Google", "Google Trust Services",
          {"vendor:Google"}, 6, true, kSvcNames, 20);
  add_sld("googleapis.com", 35, "Google", "Google Trust Services",
          {"vendor:Google", "cloud"}, 6, true, kSvcNames, 20);
  add_sld("amazonalexa.com", 2, "Amazon", "DigiCert", {"vendor:Amazon"}, 2);
  add_sld("gstatic.com", 10, "Google", "Google Trust Services",
          {"vendor:Google", "cdn"}, 5, true);
  add_sld("amazonaws.com", 32, "Amazon", "Amazon", {"cloud"}, 4);
  add_sld("doubleclick.net", 9, "Google", "Google Trust Services",
          {"ads", "tv"}, 5, true);
  add_sld("youtube.com", 2, "Google", "Google Trust Services", {"tv"}, 2, true);
  add_sld("cloudfront.net", 21, "Amazon", "Amazon", {"cdn", "cloud"}, 8);
  add_sld("googleusercontent.com", 6, "Google", "Google Trust Services",
          {"vendor:Google", "cdn"}, 6, true);
  add_sld("nflxext.com", 2, "Netflix", "DigiCert", {"tv"}, 2);
  add_sld("scdn.co", 11, "Spotify", "DigiCert", {"music", "cdn"}, 4);
  add_sld("spotify.com", 8, "Spotify", "DigiCert", {"music"}, 4);
  add_sld("facebook.com", 9, "Facebook", "DigiCert", {"social", "tv"}, 5);
  add_sld("googlesyndication.com", 3, "Google", "Google Trust Services",
          {"ads", "tv"}, 3, true);
  add_sld("amazonvideo.com", 23, "Amazon", "DigiCert", {"vendor:Amazon", "tv"}, 4);
  add_sld("ggpht.com", 5, "Google", "Google Trust Services",
          {"vendor:Google", "cdn"}, 5, true);
  add_sld("ytimg.com", 4, "Google", "Google Trust Services", {"tv", "cdn"}, 4, true);
  add_sld("media-amazon.com", 1, "Amazon", "DigiCert", {"vendor:Amazon", "cdn"}, 1);
  add_sld("amazon-dss.com", 1, "Amazon", "DigiCert", {"vendor:Amazon"}, 1);
  add_sld("meethue.com", 2, "Philips", "GoDaddy", {"vendor:Philips"}, 1);
  add_sld("amcs-tachyon.com", 1, "Amazon", "DigiCert", {"vendor:Amazon"}, 1);
  add_sld("sentry-cdn.com", 1, "Sentry", "DigiCert", {"analytics"}, 1);
  add_sld("ssl-images-amazon.com", 1, "Amazon", "DigiCert",
          {"vendor:Amazon", "cdn"}, 1);
  add_sld("plex.tv", 11, "Plex", "Let's Encrypt", {"tv", "media"}, 3, true);
  add_sld("nest.com", 1, "Google", "Google Trust Services", {"vendor:Google"}, 1,
          true);
  add_sld("google-analytics.com", 2, "Google", "Google Trust Services",
          {"analytics", "ads"}, 2, true);

  // Mark the Google-wide shared certificate: one leaf across 6 SLDs
  // (29 distinct servers, §5.1). Re-group the first few Google servers.
  {
    int regrouped = 0;
    for (ServerSpec& s : u.specs_) {
      if (s.owner_org != "Google") continue;
      if (regrouped == 29) break;
      s.cert_group = "google-wide";
      ++regrouped;
    }
  }

  // ------------------------------------------------- Netflix (§5.4, Table 9)
  // Six netflix.com FQDNs serve Netflix-signed leaves with *untrusted
  // Netflix roots* (Table 7); appboot/cloud carry the 8,150-day cert;
  // thirteen short-lived Netflix leaves chain to a public VeriSign root;
  // the rest are DigiCert-issued.
  {
    ServerSpec s;
    s.owner_org = "Netflix";
    s.issuer_org = "Netflix";
    s.issuer_public = false;
    s.ct_logged = false;
    s.tags = {"tv"};

    // appboot.netflix.com + cloud.netflix.net: fully self-signed chain,
    // validity 8,150 days.
    s.shape = ChainShape::kPrivateRoot2;
    s.not_before = d(2014, 1, 15);
    s.not_after = s.not_before + 8150;
    s.cert_group = "netflix-appboot";
    s.fqdn = "appboot.netflix.com";
    u.add(s);
    s.fqdn = "cloud.netflix.net";
    u.add(s);

    // Four more netflix.com + one netflix.net private-root servers.
    s.cert_group.clear();
    for (int i = 0; i < 4; ++i) {
      s.fqdn = "nrdp" + std::to_string(i) + ".netflix.com";
      u.add(s);
    }
    s.fqdn = "ichnaea.netflix.net";
    u.add(s);

    // Thirteen short-lived Netflix-signed leaves chaining to VeriSign
    // (valid chains; "private leaf, public trust root"; none in CT).
    s.shape = ChainShape::kPrivateViaPublicRoot;
    const int short_validity[] = {30, 31, 32, 33, 34, 36, 396, 30, 31, 32, 33, 34, 36};
    for (int i = 0; i < 13; ++i) {
      s.fqdn = "api" + std::to_string(i) + ".netflix.com";
      s.not_before = d(2022, 3, 20);
      s.not_after = s.not_before + short_validity[i];
      u.add(s);
    }

    // Remaining netflix.com servers: ordinary DigiCert certificates.
    for (int i = 0; i < 7; ++i) {
      ServerSpec pub;
      pub.fqdn = "web" + std::to_string(i) + ".netflix.com";
      pub.owner_org = "Netflix";
      pub.issuer_org = "DigiCert";
      pub.shape = ChainShape::kOmitRoot;
      pub.not_before = nb_2021;
      pub.not_after = na_2021;
      pub.tags = {"tv"};
      pub.cert_group = (i < 4) ? "netflix-web" : "";
      u.add(std::move(pub));
    }

    // nflxvideo.net CDN (Table 5's app-tied servers).
    for (int i = 1; i <= 5; ++i) {
      ServerSpec cdn;
      cdn.fqdn = "oca" + std::to_string(i) + ".nflxvideo.net";
      cdn.owner_org = "Netflix";
      cdn.issuer_org = "DigiCert";
      cdn.shape = ChainShape::kOmitRoot;
      cdn.not_before = nb_2021;
      cdn.not_after = na_2021;
      cdn.ip_count = 8;
      cdn.cert_group = "nflxvideo";
      cdn.tags = {"tv"};
      u.add(std::move(cdn));
    }
  }

  // --------------------------------------------------- Roku (Tables 7/14)
  {
    // Roku-signed servers with assorted chain shapes and ~5,000-day
    // validity; plus public-CA roku.com servers (Fig. 7's mixed estate).
    const ChainShape roku_shapes[] = {
        ChainShape::kLeafOnly, ChainShape::kPrivateRoot2,
        ChainShape::kPrivateViaPublicRoot, ChainShape::kPrivateRoot3,
        ChainShape::kMissingIntermediate};
    for (int i = 0; i < 20; ++i) {
      ServerSpec s;
      s.fqdn = std::string(kSvcNames[i % 20]) + ".roku.com";
      s.owner_org = "Roku";
      s.issuer_org = "Roku";
      s.issuer_public = false;
      s.ct_logged = false;
      s.shape = roku_shapes[i % 5];
      s.not_before = d(2015, 6, 1) + i * 30;
      s.not_after = s.not_before + 4900 + i * 10;
      s.tags = {"vendor:Roku"};
      u.add(std::move(s));
    }
    for (int i = 0; i < 22; ++i) {
      ServerSpec s;
      s.fqdn = "pub" + std::to_string(i) + ".roku.com";
      s.owner_org = "Roku";
      s.issuer_org = (i % 3 == 0) ? "Amazon" : ((i % 3 == 1) ? "DigiCert" : "Let's Encrypt");
      s.shape = ChainShape::kOmitRoot;
      s.not_before = (i % 3 == 2) ? nb_le : nb_2021;
      s.not_after = (i % 3 == 2) ? na_le : na_2021;
      s.cert_group = (i < 8) ? ("roku-pub#g" + std::to_string(i / 4)) : "";
      s.tags = {"vendor:Roku"};
      u.add(std::move(s));
    }
    ServerSpec t;
    t.fqdn = "ntp.rokutime.com";
    t.owner_org = "Roku";
    t.issuer_org = "Roku";
    t.issuer_public = false;
    t.ct_logged = false;
    t.shape = ChainShape::kPrivateRoot2;
    t.not_before = d(2015, 6, 1);
    t.not_after = t.not_before + 5000;
    t.tags = {"vendor:Roku"};
    u.add(std::move(t));
  }

  // ------------------------------------------ vendor-signed rows (Table 7/14)
  struct PrivateRow {
    const char* fqdn;
    const char* owner;
    const char* issuer;
    ChainShape shape;
    std::int64_t nb;
    std::int64_t validity;
    const char* vendor_tag;
    bool cn_mismatch = false;
  };
  const PrivateRow private_rows[] = {
      // nest.com: Nest Labs, chain 2 (untrusted root), visited via Google.
      {"frontdoor.nest.com", "Google", "Nest Labs", ChainShape::kPrivateRoot2,
       d(2016, 4, 1), 3650, "vendor:Google"},
      {"transport.nest.com", "Google", "Nest Labs", ChainShape::kPrivateRoot2,
       d(2016, 4, 1), 3650, "vendor:Google"},
      {"log.nest.com", "Google", "Nest Labs", ChainShape::kPrivateRoot2,
       d(2016, 4, 1), 3650, "vendor:Google"},
      // Samsung constellation: leaf-only chains + self-signed patterns,
      // extreme validity periods (25,202 and 10,950 days).
      {"svc0.samsungcloudsolution.net", "Samsung", "Samsung Electronics",
       ChainShape::kLeafOnly, d(2012, 2, 1), 25202, "vendor:Samsung"},
      {"svc1.samsungcloudsolution.net", "Samsung", "Samsung Electronics",
       ChainShape::kLeafOnly, d(2012, 2, 1), 25202, "vendor:Samsung"},
      {"svc2.samsungcloudsolution.net", "Samsung", "Samsung Electronics",
       ChainShape::kLeafOnly, d(2013, 5, 1), 10950, "vendor:Samsung"},
      {"svc3.samsungcloudsolution.net", "Samsung", "Samsung Electronics",
       ChainShape::kLeafOnly, d(2013, 5, 1), 10950, "vendor:Samsung"},
      {"svc4.samsungcloudsolution.net", "Samsung", "Samsung Electronics",
       ChainShape::kLeafOnly, d(2013, 5, 1), 10950, "vendor:Samsung"},
      {"svc5.samsungcloudsolution.net", "Samsung", "Samsung Electronics",
       ChainShape::kLeafOnly, d(2013, 5, 1), 10950, "vendor:Samsung"},
      {"svc6.samsungcloudsolution.net", "Samsung", "Samsung Electronics",
       ChainShape::kLeafOnly, d(2013, 5, 1), 10950, "vendor:Samsung"},
      {"api0.samsungcloudsolution.com", "Samsung", "Samsung Electronics",
       ChainShape::kLeafOnly, d(2013, 5, 1), 10950, "vendor:Samsung"},
      {"api1.samsungcloudsolution.com", "Samsung", "Samsung Electronics",
       ChainShape::kPrivateViaPublicRoot, d(2013, 5, 1), 10950, "vendor:Samsung"},
      {"api2.samsungcloudsolution.com", "Samsung", "Samsung Electronics",
       ChainShape::kPrivateViaPublicRoot, d(2013, 5, 1), 10950, "vendor:Samsung"},
      {"api3.samsungcloudsolution.com", "Samsung", "Samsung Electronics",
       ChainShape::kPrivateViaPublicRoot, d(2013, 5, 1), 10950, "vendor:Samsung"},
      {"rm.samsungrm.net", "Samsung", "Samsung Electronics",
       ChainShape::kLeafOnly, d(2013, 5, 1), 10950, "vendor:Samsung"},
      {"www.pavv.co.kr", "Samsung", "Samsung Electronics",
       ChainShape::kPrivateRoot2, d(2012, 2, 1), 10950, "vendor:Samsung"},
      {"gld.samsungelectronics.com", "Samsung", "Samsung Electronics",
       ChainShape::kPrivateRoot4, d(2013, 5, 1), 10950, "vendor:Samsung"},
      {"log.samsunghrm.com", "Samsung", "Samsung Electronics",
       ChainShape::kDoubleSelfSigned, d(2013, 5, 1), 10950, "vendor:Samsung"},
      // Universal Electronics signs a server Samsung TVs consult.
      {"qs.ueiwsp.com", "Universal Electronics", "Universal Electronics",
       ChainShape::kSelfSigned, d(2014, 1, 1), 21946, "vendor:Samsung"},
      // Nintendo: leaf-only and private-root chains, 9,300/7,233-day certs.
      {"conntest.nintendo.net", "Nintendo", "Nintendo", ChainShape::kLeafOnly,
       d(2012, 6, 1), 9300, "vendor:Nintendo"},
      {"ctest.nintendo.net", "Nintendo", "Nintendo", ChainShape::kLeafOnly,
       d(2012, 6, 1), 9300, "vendor:Nintendo"},
      {"npns.nintendo.net", "Nintendo", "Nintendo", ChainShape::kLeafOnly,
       d(2014, 3, 1), 7233, "vendor:Nintendo"},
      {"sun.nintendo.net", "Nintendo", "Nintendo", ChainShape::kLeafOnly,
       d(2014, 3, 1), 7233, "vendor:Nintendo"},
      // PlayStation / Sony Entertainment.
      {"fus01.playstation.net", "Sony", "Sony Computer Entertainment",
       ChainShape::kPrivateViaPublicRoot, d(2014, 9, 1), 3650, "vendor:Sony"},
      {"auth.sonyentertainmentnetwork.com", "Sony", "Sony Computer Entertainment",
       ChainShape::kPrivateViaPublicRoot, d(2014, 9, 1), 3650, "vendor:Sony"},
      // Tesla (visited by Tesla and, via media apps, LG).
      {"ownership.tesla.services", "Tesla", "Tesla Motor Services",
       ChainShape::kPrivateViaPublicRoot, d(2019, 1, 1), 2000, "vendor:Tesla"},
      {"telemetry.tesla.services", "Tesla", "Tesla Motor Services",
       ChainShape::kPrivateRoot2, d(2019, 1, 1), 2000, "vendor:Tesla"},
      {"fleet.tesla.services", "Tesla", "Tesla Motor Services",
       ChainShape::kPrivateRoot2, d(2019, 1, 1), 2000, "vendor:Tesla"},
      {"updates.tesla.services", "Tesla", "Tesla Motor Services",
       ChainShape::kPrivateRoot3, d(2019, 1, 1), 2000, "vendor:Tesla"},
      // Obihai VoIP.
      {"device.obitalk.com", "Obihai", "Obihai Technology", ChainShape::kLeafOnly,
       d(2015, 3, 1), 5475, "vendor:Obihai"},
      // meethue private row (Table 7).
      {"diag.meethue.com", "Philips", "Philips", ChainShape::kPrivateRoot2,
       d(2016, 8, 1), 3650, "vendor:Philips"},
      // LG SDP.
      {"kr-op.lgtvsdp.com", "LG", "LG Electronics", ChainShape::kPrivateViaPublicRoot,
       d(2013, 11, 1), 7300, "vendor:LG"},
      {"us-op.lgtvsdp.com", "LG", "LG Electronics", ChainShape::kPrivateRoot2,
       d(2013, 11, 1), 7300, "vendor:LG"},
      // Canary: 4-deep fully private chain.
      {"api.canaryis.com", "Canary", "Canary Connect", ChainShape::kPrivateRoot4,
       d(2016, 2, 1), 3650, "vendor:Canary"},
      {"stream.canaryis.com", "Canary", "Canary Connect", ChainShape::kPrivateRoot4,
       d(2016, 2, 1), 3650, "vendor:Canary"},
      // Sense energy monitors.
      {"api.sense.com", "Sense", "Sense Labs", ChainShape::kPrivateRoot3,
       d(2017, 5, 1), 3650, "vendor:Sense"},
      {"clientrt.sense.com", "Sense", "Sense Labs", ChainShape::kPrivateRoot3,
       d(2017, 5, 1), 3650, "vendor:Sense"},
      // ecobee.
      {"api.ecobee.com", "ecobee", "ecobee", ChainShape::kPrivateRoot3,
       d(2017, 1, 1), 3650, "vendor:ecobee"},
      // DirecTV / ATT.
      {"hlsmfs.dtvce.com", "DirecTV", "ATT Mobility and Entertainment",
       ChainShape::kPrivateRoot4, d(2015, 7, 1), 7300, "vendor:DirecTV"},
      // EchoStar / Dish self-signed, 24,855 days.
      {"epg.dishaccess.tv", "Dish Network", "EchoStar", ChainShape::kSelfSigned,
       d(2011, 10, 1), 24855, "vendor:Dish Network"},
      {"auth.dishaccess.tv", "Dish Network", "EchoStar", ChainShape::kSelfSigned,
       d(2011, 10, 1), 24855, "vendor:Dish Network"},
      // Tuya: 100-year self-signed cert that also mismatches its hostname.
      {"a2.tuyaus.com", "Tuya", "Tuya", ChainShape::kSelfSigned,
       d(2017, 3, 1), 36500, "vendor:Tuya", true},
  };
  for (const PrivateRow& row : private_rows) {
    ServerSpec s;
    s.fqdn = row.fqdn;
    s.owner_org = row.owner;
    s.issuer_org = row.issuer;
    s.issuer_public = false;
    s.ct_logged = false;
    s.shape = row.shape;
    s.not_before = row.nb;
    s.not_after = row.nb + row.validity;
    s.cn_mismatch = row.cn_mismatch;
    s.tags = {row.vendor_tag};
    u.add(std::move(s));
  }

  // ------------------------------- cross-signed vendor CAs (valid chains)
  // Several vendors run private issuing CAs that are cross-signed by a
  // public root — their leaves are private-issued yet validate (§5.4's
  // "private leaf, public trust root" class).
  {
    struct CrossRow {
      const char* fqdn;
      const char* owner;
      const char* issuer;
      const char* tag;
    };
    const CrossRow cross_rows[] = {
        {"dev0.samsungiotcloud.com", "Samsung", "Samsung Electronics", "vendor:Samsung"},
        {"dev1.samsungiotcloud.com", "Samsung", "Samsung Electronics", "vendor:Samsung"},
        {"dev2.samsungiotcloud.com", "Samsung", "Samsung Electronics", "vendor:Samsung"},
        {"dev3.samsungiotcloud.com", "Samsung", "Samsung Electronics", "vendor:Samsung"},
        {"push0.lgeapi.com", "LG", "LG Electronics", "vendor:LG"},
        {"push1.lgeapi.com", "LG", "LG Electronics", "vendor:LG"},
        {"push2.lgeapi.com", "LG", "LG Electronics", "vendor:LG"},
        {"core0.sonycoreapi.com", "Sony", "Sony Computer Entertainment", "vendor:Sony"},
        {"core1.sonycoreapi.com", "Sony", "Sony Computer Entertainment", "vendor:Sony"},
        {"core2.sonycoreapi.com", "Sony", "Sony Computer Entertainment", "vendor:Sony"},
        {"cfg0.nintendowifi.net", "Nintendo", "Nintendo", "vendor:Nintendo"},
        {"cfg1.nintendowifi.net", "Nintendo", "Nintendo", "vendor:Nintendo"},
        {"iot0.philips-iot.com", "Philips", "Philips", "vendor:Philips"},
        {"iot1.philips-iot.com", "Philips", "Philips", "vendor:Philips"},
        {"home0.ecobeeiot.com", "ecobee", "ecobee", "vendor:ecobee"},
    };
    for (const CrossRow& row : cross_rows) {
      ServerSpec s;
      s.fqdn = row.fqdn;
      s.owner_org = row.owner;
      s.issuer_org = row.issuer;
      s.issuer_public = false;
      s.ct_logged = false;
      s.shape = ChainShape::kPrivateViaPublicRoot;
      s.not_before = d(2021, 5, 1);
      s.not_after = s.not_before + 397;
      s.tags = {row.tag};
      u.add(std::move(s));
    }
  }

  // ---------------------------------------------------- expired (Table 8)
  {
    ServerSpec s;
    s.fqdn = "api.skyegloup.com";  // HEOS backend, visited by Denon/Marantz
    s.owner_org = "Sound United";
    s.issuer_org = "Gandi";
    s.shape = ChainShape::kOmitRoot;
    s.not_before = d(2017, 7, 31);
    s.not_after = d(2018, 7, 31);
    s.ct_logged = true;
    s.tags = {"vendor:Denon", "vendor:Marantz"};
    u.add(std::move(s));

    ServerSpec w;
    w.fqdn = "api.wink.com";
    w.owner_org = "Wink";
    w.issuer_org = "COMODO";
    w.shape = ChainShape::kOmitRoot;
    w.not_before = d(2018, 4, 17);
    w.not_after = d(2019, 4, 17);
    w.ct_logged = true;
    w.tags = {"vendor:wink", "vendor:Samsung"};
    u.add(std::move(w));
  }

  // ------------------------------------------ Table 7's odd public failure
  {
    // One amazonaws.com host serving a DigiCert leaf without its
    // intermediate (incomplete chain, visited by Vizio).
    ServerSpec s;
    s.fqdn = "broken-elb.amazonaws.com";
    s.owner_org = "Amazon";
    s.issuer_org = "DigiCert";
    s.shape = ChainShape::kMissingIntermediate;
    s.not_before = nb_2021;
    s.not_after = na_2021;
    s.tags = {"vendor:Vizio", "cloud"};
    u.add(std::move(s));
  }

  // ------------------------------- eight public certs that are NOT in CT
  {
    struct Unlogged {
      const char* fqdn;
      const char* issuer;
    };
    const Unlogged unlogged[] = {
        {"iot0.azure-devices.example.net", "Microsoft Corporation"},
        {"iot1.azure-devices.example.net", "Microsoft Corporation"},
        {"iot2.azure-devices.example.net", "Microsoft Corporation"},
        {"iot3.azure-devices.example.net", "Microsoft Corporation"},
        {"courier.push.apple-iot.example.com", "Apple"},
        {"gateway.icloud-iot.example.com", "Apple"},
        {"fw.internal-dist.example.org", "Sectigo"},
        {"legacy-api.vendorcloud.example.org", "DigiCert"},
    };
    for (const Unlogged& row : unlogged) {
      ServerSpec s;
      s.fqdn = row.fqdn;
      s.owner_org = "Misc";
      s.issuer_org = row.issuer;
      s.shape = ChainShape::kOmitRoot;
      s.not_before = nb_2021;
      s.not_after = na_2021;
      s.ct_logged = false;  // the anomaly Fig. 6 / §5.4 flags
      s.tags = {"cloud"};
      u.add(std::move(s));
    }
  }

  // ---------------------------------------- shared-stack SNIs (Table 5)
  for (const SharedStackSpec& spec : shared_stack_table()) {
    for (const std::string& sni : spec.snis) {
      if (u.find(sni) != nullptr) continue;
      ServerSpec s;
      s.fqdn = sni;
      std::string sld = second_level_domain(sni);
      s.owner_org = sld.substr(0, sld.find('.'));
      s.issuer_org = tail_issuer(fnv1a64(sni) % 97);
      s.shape = ChainShape::kOmitRoot;
      s.not_before = nb_2021;
      s.not_after = na_2021;
      s.tags = {"shared:" + spec.name};
      u.add(std::move(s));
    }
  }

  // ------------------------------------------------ vendor-owned domains
  for (const VendorSpec& v : vendor_table()) {
    // Isolated vendors (§5.2: Canary, Tuya, Obihai) expose ONLY the
    // vendor-signed servers declared above.
    if (v.isolated) continue;
    for (const std::string& domain : v.domains) {
      int fqdns = 1 + static_cast<int>(fnv1a64(domain) % 3);  // 1..3
      for (int i = 0; i < fqdns; ++i) {
        ServerSpec s;
        s.fqdn = std::string(kSvcNames[(fnv1a64(domain) + i) % 20]) + "." + domain;
        if (u.find(s.fqdn) != nullptr) continue;
        s.owner_org = v.name;
        s.issuer_org = tail_issuer(fnv1a64(domain) + i);
        s.shape = ChainShape::kOmitRoot;
        s.not_before = nb_2021;
        s.not_after = na_2021;
        s.tags = {"vendor:" + v.name};
        u.add(std::move(s));
      }
    }
  }

  // ------------------------------------------------------- long tail
  // Third-party services with a handful of visitors each, padding the
  // universe to ~1,194 SNIs (§3) with 43 unreachable at probe time.
  static const char* kTailStems[] = {
      "weatherhub",  "clockset",   "iotmetrics", "smarthomeapi", "fwdist",
      "devregistry", "cloudrelay", "applog",     "pushfeed",     "mediacast",
      "voicesvc",    "bulbcloud",  "camstream",  "plugctl",      "sensordata"};
  std::size_t tail_index = 0;
  while (u.size() < 1194) {
    ServerSpec s;
    // Three FQDNs per tail SLD; every second SLD fronts its names with one
    // wildcard certificate (cert sharing, §5.1).
    std::size_t sld_index = tail_index / 2;
    const char* stem = kTailStems[sld_index % 15];
    std::string sld = std::string(stem) + std::to_string(sld_index / 15) + ".com";
    s.fqdn = std::string(kSvcNames[(tail_index * 7 + sld_index) % 20]) + "." + sld;
    s.owner_org = sld.substr(0, sld.size() - 4);
    s.issuer_org = tail_issuer(sld_index);  // one issuer per SLD
    s.shape = ChainShape::kOmitRoot;
    bool short_lived = sld_index % 5 == 2;
    s.not_before = short_lived ? nb_le : nb_2021;
    s.not_after = short_lived ? na_le : na_2021;
    s.ip_count = 1 + static_cast<int>(tail_index % 4);
    if (sld_index % 3 == 0) s.cert_group = sld + "#wildcard";
    s.tags = {std::vector<std::string>{"cloud", "analytics", "smart-home",
                                       "firmware", "media"}[sld_index % 5]};
    // A slice of the tail serves location-specific certificates (Table 16);
    // another slice misorders its chain (intermediate before leaf).
    s.vary_by_vantage = (tail_index % 17 == 3 && s.cert_group.empty());
    s.shuffled_chain = (tail_index % 41 == 7);
    u.add(std::move(s));
    ++tail_index;
  }

  // 43 SNIs have gone dark between capture and probe (§3).
  {
    std::size_t marked = 0;
    for (auto it = u.specs_.rbegin(); it != u.specs_.rend() && marked < 43; ++it) {
      it->reachable = false;
      ++marked;
    }
  }
  // Regional reachability gaps (Table 16: Frankfurt -2, Singapore -1).
  for (ServerSpec& s : u.specs_) {
    if (s.fqdn == "svc0.samsungcloudsolution.net" || s.fqdn == "www.pavv.co.kr")
      s.tags.push_back("unreachable:frankfurt");
    if (s.fqdn == "ntp.rokutime.com")
      s.tags.push_back("unreachable:singapore");
  }

  return u;
}

// ===================================================================== world

namespace {

/// Per-organization CA material: a root and up to two intermediates.
struct CaSet {
  x509::CertificateAuthority root;
  x509::CertificateAuthority intermediate;
  x509::CertificateAuthority intermediate2;

  CaSet(const std::string& org, x509::CaKind kind)
      : root(x509::CertificateAuthority::make_root(org + " Root CA", org, kind,
                                                   d(2010, 1, 1), d(2040, 1, 1))),
        intermediate(root.subordinate(org + " Issuing CA", d(2012, 1, 1),
                                      d(2038, 1, 1))),
        intermediate2(intermediate.subordinate(org + " Issuing CA 2",
                                               d(2014, 1, 1), d(2036, 1, 1))) {}
};

}  // namespace

SimWorld build_world(const ServerUniverse& universe) {
  SimWorld world;
  Rng rng(0x5eed0002);

  // Certificate authorities.
  std::map<std::string, std::unique_ptr<CaSet>> cas;
  auto ca_for = [&](const std::string& org, bool is_public) -> CaSet& {
    auto it = cas.find(org);
    if (it == cas.end()) {
      it = cas.emplace(org, std::make_unique<CaSet>(
                               org, is_public ? x509::CaKind::kPublicTrust
                                              : x509::CaKind::kPrivate))
               .first;
      it->second->root.publish_key(world.keys);
      it->second->intermediate.publish_key(world.keys);
      it->second->intermediate2.publish_key(world.keys);
      world.issuer_is_public[org] = is_public;
    }
    return *it->second;
  };

  // Trust stores: every public issuer's root lands in Mozilla; Apple and
  // Microsoft carry overlapping subsets (§5.3 uses the union anyway).
  x509::TrustStore mozilla("mozilla"), apple("apple"), microsoft("microsoft");
  for (const std::string& org : public_issuers()) {
    CaSet& set = ca_for(org, true);
    mozilla.add_root(set.root.certificate());
    if (fnv1a64(org) % 2 == 0) apple.add_root(set.root.certificate());
    if (fnv1a64(org) % 3 != 1) microsoft.add_root(set.root.certificate());
  }
  for (const std::string& org : private_issuers()) ca_for(org, false);
  world.trust.add(std::move(mozilla));
  world.trust.add(std::move(apple));
  world.trust.add(std::move(microsoft));

  // CT logs.
  world.logs.push_back(std::make_unique<ct::CtLog>("argon2022"));
  world.logs.push_back(std::make_unique<ct::CtLog>("xenon2022"));
  for (const auto& log : world.logs) world.ct_index.add_log(log.get());

  // Certificate-group leaves are issued once and shared.
  std::map<std::string, std::vector<std::string>> group_members;
  for (const ServerSpec& s : universe.specs()) {
    if (!s.cert_group.empty()) group_members[s.cert_group].push_back(s.fqdn);
  }
  std::map<std::string, x509::Certificate> group_leaf;
  std::map<std::string, std::unique_ptr<x509::CertificateAuthority>> cross_signed;

  auto issue_leaf = [&](const ServerSpec& s, CaSet& ca, int variant)
      -> x509::Certificate {
    x509::IssueRequest req;
    if (s.cn_mismatch) {
      // The Tuya pattern: neither CN nor SAN covers the probed hostname.
      req.subject.common_name = "iot-gateway.internal";
      req.san_dns = {"gw." + second_level_domain(s.fqdn)};
    } else if (!s.cert_group.empty()) {
      const auto& members = group_members[s.cert_group];
      req.subject.common_name = "*." + second_level_domain(members.front());
      req.san_dns = members;
      req.san_dns.push_back(req.subject.common_name);
    } else {
      req.subject.common_name = s.fqdn;
      req.san_dns = {s.fqdn};
    }
    req.subject.organization = s.owner_org;
    req.not_before = s.not_before + variant;  // distinct serial content per vantage
    req.not_after = s.not_after;
    const x509::CertificateAuthority* signer = &ca.intermediate;
    if (s.shape == ChainShape::kLeafOnly || s.shape == ChainShape::kPrivateRoot2)
      signer = &ca.root;
    if (s.shape == ChainShape::kPrivateRoot4) signer = &ca.intermediate2;
    return signer->issue(req);
  };

  auto build_chain = [&](const ServerSpec& s, CaSet& ca,
                         const x509::Certificate& leaf)
      -> std::vector<x509::Certificate> {
    switch (s.shape) {
      case ChainShape::kFull:
        return {leaf, ca.intermediate.certificate(), ca.root.certificate()};
      case ChainShape::kOmitRoot:
        return {leaf, ca.intermediate.certificate()};
      case ChainShape::kMissingIntermediate:
        return {leaf};
      case ChainShape::kLeafOnly:
        return {leaf};
      case ChainShape::kPrivateRoot2:
        return {leaf, ca.root.certificate()};
      case ChainShape::kPrivateRoot3:
        return {leaf, ca.intermediate.certificate(), ca.root.certificate()};
      case ChainShape::kPrivateRoot4:
        return {leaf, ca.intermediate2.certificate(), ca.intermediate.certificate(),
                ca.root.certificate()};
      case ChainShape::kPrivateViaPublicRoot: {
        // Netflix pattern: the private org's intermediate is cross-signed by
        // a public root; served chain omits that public root.
        return {leaf, ca.intermediate.certificate()};
      }
      case ChainShape::kSelfSigned:
      case ChainShape::kDoubleSelfSigned: {
        // A self-signed end-entity certificate for this host.
        auto self_ca = x509::CertificateAuthority::make_root(
            s.cn_mismatch ? "iot-gateway.internal"
                          : "*." + second_level_domain(s.fqdn),
            s.issuer_org, x509::CaKind::kPrivate, s.not_before, s.not_after);
        self_ca.publish_key(world.keys);
        if (s.shape == ChainShape::kDoubleSelfSigned) {
          return {self_ca.certificate(), self_ca.certificate()};
        }
        return {self_ca.certificate()};
      }
    }
    return {leaf};
  };

  for (const ServerSpec& s : universe.specs()) {
    bool is_public = true;
    for (const std::string& org : private_issuers()) {
      if (org == s.issuer_org) is_public = false;
    }
    CaSet& ca = ca_for(s.issuer_org, is_public);

    // Cross-signed private CAs: the org's intermediate is itself signed by
    // a *public* root (Netflix's "Public SHA2 RSA CA 3" under VeriSign is
    // the paper's example; several vendors run the same arrangement). The
    // leaf issuer is private but the chain validates — the yellow
    // "private leaf, public trust root" class of Fig. 6.
    if (s.shape == ChainShape::kPrivateViaPublicRoot) {
      auto it = cross_signed.find(s.issuer_org);
      if (it == cross_signed.end()) {
        bool netflix = s.issuer_org == "Netflix";
        CaSet& anchor = ca_for(
            netflix ? "VeriSign Class 3 Public Primary Certification" : "DigiCert",
            true);
        auto cross = std::make_unique<x509::CertificateAuthority>(
            anchor.root.subordinate(
                netflix ? "Netflix Public SHA2 RSA CA 3"
                        : s.issuer_org + " TLS CA (cross-signed)",
                d(2014, 1, 1), d(2036, 1, 1), s.issuer_org));
        cross->publish_key(world.keys);
        it = cross_signed.emplace(s.issuer_org, std::move(cross)).first;
      }
      const x509::CertificateAuthority& cross = *it->second;
      net::SimServer server;
      server.sni = s.fqdn;
      x509::IssueRequest req;
      req.subject.common_name = s.fqdn;
      req.subject.organization = s.owner_org;
      req.san_dns = {s.fqdn};
      req.not_before = s.not_before;
      req.not_after = s.not_after;
      x509::Certificate leaf = cross.issue(req);
      server.default_chain = {leaf, cross.certificate()};
      server.reachable = s.reachable;
      for (int i = 0; i < s.ip_count; ++i) {
        server.ips.push_back("198.45." + std::to_string(fnv1a64(s.fqdn) % 250) +
                             "." + std::to_string(i + 1));
      }
      world.internet.add_server(std::move(server));
      continue;
    }

    net::SimServer server;
    server.sni = s.fqdn;
    server.reachable = s.reachable;
    for (const std::string& tag : s.tags) {
      if (tag == "unreachable:frankfurt")
        server.unreachable_from.push_back(net::VantagePoint::kFrankfurt);
      if (tag == "unreachable:singapore")
        server.unreachable_from.push_back(net::VantagePoint::kSingapore);
    }

    x509::Certificate leaf;
    if (!s.cert_group.empty()) {
      auto it = group_leaf.find(s.cert_group);
      if (it == group_leaf.end()) {
        leaf = issue_leaf(s, ca, 0);
        group_leaf[s.cert_group] = leaf;
      } else {
        leaf = it->second;
      }
    } else {
      leaf = issue_leaf(s, ca, 0);
    }
    server.default_chain = build_chain(s, ca, leaf);

    if (s.vary_by_vantage) {
      // Distinct leaf (and thus fingerprint) per vantage point.
      server.per_vantage_chain[net::VantagePoint::kFrankfurt] =
          build_chain(s, ca, issue_leaf(s, ca, 1));
      server.per_vantage_chain[net::VantagePoint::kSingapore] =
          build_chain(s, ca, issue_leaf(s, ca, 2));
    }
    if (s.shuffled_chain) {
      std::reverse(server.default_chain.begin(), server.default_chain.end());
    }

    // IP addresses: stable per fqdn. Servers sharing one certificate keep
    // distinct fronts, so a widely shared certificate accumulates many IPs
    // (§5.1: up to 93 addresses behind one leaf).
    int base = static_cast<int>(fnv1a64(s.fqdn) % 200);
    int ips = s.ip_count;
    for (const std::string& tag : s.tags) {
      if (tag == "cdn") ips += 6;  // CDN fronts fan out wider
    }
    for (int i = 0; i < ips; ++i) {
      server.ips.push_back("203." + std::to_string(base % 4) + "." +
                           std::to_string(base) + "." + std::to_string(i + 1));
    }

    // A minority of public-CA servers staple OCSP responses (App. B.9:
    // clients ask; few IoT servers answer). Private-CA servers never staple
    // — there is no responder infrastructure behind a "set and forget" CA.
    if (is_public && fnv1a64("staple:" + s.fqdn) % 4 == 0 &&
        !server.default_chain.empty()) {
      x509::OcspResponder responder(&ca.intermediate, nullptr, 7);
      server.stapled_response = responder.respond(leaf, d(2022, 4, 12));
    }

    // CT submission at issuance (public-trust CA policy, §5.4). The CA
    // submits the LEAF it issued — chain serving order is irrelevant here.
    if (s.ct_logged && is_public) {
      world.logs[0]->submit(leaf, s.not_before);
      if (fnv1a64(s.fqdn) % 2 == 0) world.logs[1]->submit(leaf, s.not_before);
    }

    world.internet.add_server(std::move(server));
  }

  // ----------------------------------------------- stack + dual-stack pass
  // Runs AFTER the issuing loop so the CAs' serial counters — and therefore
  // every v4 certificate — keep their historical values: v6-divergent
  // leaves append to the serial space instead of shifting it.
  for (const ServerSpec& s : universe.specs()) {
    net::SimServer* server = world.internet.find_mutable(s.fqdn);
    if (server == nullptr) continue;

    // Server-stack profile, shared per owner org (one backend fleet per
    // vendor). These traits only answer batteries that opt in — ALPN
    // offers, supported_versions, session_ticket — so the §5 certificate
    // prober's flights and reports stay byte-identical.
    switch (fnv1a64("stack:" + s.owner_org) % 4) {
      case 0:  // modern front: TLS 1.3, h2, tickets; refuses TLS 1.0/1.1
        server->max_tls_version = 0x0304;
        server->min_tls_version = 0x0302;
        server->alpn_protocols = {"h2", "http/1.1"};
        server->session_tickets = true;
        break;
      case 1:  // maintained: TLS 1.2 ceiling, http/1.1, tickets
        server->alpn_protocols = {"http/1.1"};
        server->session_tickets = true;
        break;
      case 2:  // hardened-but-plain: TLS 1.2 only, no ALPN, no tickets
        server->min_tls_version = 0x0302;
        break;
      default:  // legacy embedded stack: factory defaults, answers anything
        break;
    }

    // Roughly half the estate publishes AAAA records.
    if (fnv1a64("dualstack:" + s.fqdn) % 2 != 0) continue;
    server->dual_stack = true;
    std::uint64_t h = fnv1a64(s.fqdn);
    for (int i = 0; i < 2; ++i) {
      server->ipv6_addresses.push_back("2001:db8:" + std::to_string(h % 4096) +
                                       "::" + std::to_string(i + 1));
    }

    // A slice of the dual-stack estate diverges across families — the
    // Table 16 inconsistency story, v4-vs-v6 instead of vantage-vs-vantage.
    if (fnv1a64("v6stack:" + s.fqdn) % 13 == 0) {
      server->suites_v6 =
          std::vector<std::uint16_t>{0xc030, 0xc02f, 0x009d, 0x009c};
      server->max_tls_version_v6 = 0x0303;  // the v6 frontend lags: no 1.3
    }
    bool plain_shape = s.shape != ChainShape::kPrivateViaPublicRoot &&
                       s.shape != ChainShape::kSelfSigned &&
                       s.shape != ChainShape::kDoubleSelfSigned;
    if (plain_shape && s.cert_group.empty() &&
        fnv1a64("v6cert:" + s.fqdn) % 11 == 0) {
      bool is_public = true;
      for (const std::string& org : private_issuers()) {
        if (org == s.issuer_org) is_public = false;
      }
      CaSet& ca = ca_for(s.issuer_org, is_public);
      // Not CT-submitted: a v6-only leaf nobody logged is exactly the kind
      // of estate drift the dual-stack report exists to surface.
      server->chain_v6 = build_chain(s, ca, issue_leaf(s, ca, 3));
    }
  }

  (void)rng;
  return world;
}

}  // namespace iotls::devicesim

#include "stream/reports.hpp"

#include <algorithm>

#include "core/chains.hpp"
#include "core/ct_validity.hpp"
#include "core/device_metrics.hpp"
#include "core/issuers.hpp"
#include "core/sharing.hpp"
#include "core/vendor_metrics.hpp"
#include "corpus/corpus.hpp"

namespace iotls::stream {

namespace {

obs::Json set_json(const std::set<std::string>& values) {
  obs::Json::Array out;
  for (const std::string& v : values) out.emplace_back(v);
  return obs::Json(std::move(out));
}

obs::Json report_table02(const core::ClientDataset& ds) {
  core::DegreeDistribution d = core::fingerprint_degree_distribution(ds);
  return obs::Json(obs::Json::Object{
      {"table", "table02"},
      {"total", static_cast<std::int64_t>(d.total)},
      {"degree1", static_cast<std::int64_t>(d.degree1)},
      {"degree2", static_cast<std::int64_t>(d.degree2)},
      {"degree3to5", static_cast<std::int64_t>(d.degree3to5)},
      {"degree_gt5", static_cast<std::int64_t>(d.degree_gt5)},
      {"ratio1", d.ratio1()},
  });
}

obs::Json report_table03(const core::ClientDataset& ds) {
  obs::Json::Array rows;
  for (const core::VendorHeterogeneity& row :
       core::vendor_heterogeneity_top(ds, 10)) {
    rows.emplace_back(obs::Json::Object{
        {"vendor", row.vendor},
        {"fingerprints", static_cast<std::int64_t>(row.fingerprints)},
        {"shared_by_10plus", row.shared_by_10plus},
        {"single_device", row.single_device},
    });
  }
  return obs::Json(obs::Json::Object{{"table", "table03"},
                                     {"rows", std::move(rows)}});
}

obs::Json report_table04(const core::ClientDataset& ds) {
  obs::Json::Array rows;
  for (const core::VendorSimilarity& sim : core::vendor_similarities(ds, 0.2)) {
    rows.emplace_back(obs::Json::Object{
        {"vendor_a", sim.vendor_a},
        {"vendor_b", sim.vendor_b},
        {"jaccard", sim.jaccard},
        {"overlap_coefficient", sim.overlap_coefficient},
    });
  }
  return obs::Json(obs::Json::Object{{"table", "table04"},
                                     {"rows", std::move(rows)}});
}

obs::Json report_table05(const core::ClientDataset& ds) {
  // The corpus is immutable reference data; one instance serves every call.
  static const corpus::LibraryCorpus corpus = corpus::LibraryCorpus::standard();
  core::ServerTieReport tie = core::server_tied_fingerprints(ds, corpus);
  obs::Json::Array rows;
  for (const core::ServerTiedFingerprint& row : tie.cross_vendor_rows) {
    rows.emplace_back(obs::Json::Object{
        {"sld", row.sld},
        {"fp_key", row.fp_key},
        {"fqdns", set_json(row.fqdns)},
        {"devices", static_cast<std::int64_t>(row.devices.size())},
        {"vendors", set_json(row.vendors)},
    });
  }
  return obs::Json(obs::Json::Object{
      {"table", "table05"},
      {"total_snis", static_cast<std::int64_t>(tie.total_snis)},
      {"tied_snis", static_cast<std::int64_t>(tie.tied_snis)},
      {"rows", std::move(rows)},
  });
}

obs::Json report_certs(const core::CertDataset& certs) {
  core::CertDataset::SharingStats stats = certs.sharing_stats();
  return obs::Json(obs::Json::Object{
      {"report", "certs"},
      {"extracted_snis", static_cast<std::int64_t>(certs.extracted_snis())},
      {"reachable_snis", static_cast<std::int64_t>(certs.reachable_snis())},
      {"distinct_leaves", static_cast<std::int64_t>(certs.leaves().size())},
      {"issuer_organizations",
       static_cast<std::int64_t>(certs.issuer_organizations().size())},
      {"mean_servers_per_cert", stats.mean_servers_per_cert},
      {"max_servers_per_cert",
       static_cast<std::int64_t>(stats.max_servers_per_cert)},
      {"certs_on_multiple_ips",
       static_cast<std::int64_t>(stats.certs_on_multiple_ips)},
  });
}

obs::Json chain_rows_json(const std::vector<core::DomainChainRow>& rows) {
  obs::Json::Array out;
  for (const core::DomainChainRow& row : rows) {
    out.emplace_back(obs::Json::Object{
        {"sld", row.sld},
        {"issuer", row.leaf_issuer},
        {"status", x509::chain_status_slug(row.status)},
        {"fqdns", static_cast<std::int64_t>(row.fqdns)},
        {"devices", static_cast<std::int64_t>(row.devices.size())},
        {"vendors", set_json(row.vendors)},
    });
  }
  return obs::Json(std::move(out));
}

obs::Json report_chains(StreamIngest& ingest, const core::CertDataset& certs) {
  core::ChainReport chains = core::validate_dataset(
      certs, ingest.world(), ingest.config().validation_day,
      ingest.config().jobs, &ingest.validation_cache());
  obs::Json::Array expired;
  for (const core::ExpiredRow& row : chains.expired) {
    expired.emplace_back(obs::Json::Object{
        {"sni", row.sni},
        {"not_after", row.not_after},
        {"issuer", row.issuer},
    });
  }
  return obs::Json(obs::Json::Object{
      {"report", "chains"},
      {"validated", static_cast<std::int64_t>(chains.validated)},
      {"trusted", static_cast<std::int64_t>(chains.trusted)},
      {"failure_rows", chain_rows_json(chains.failure_rows)},
      {"private_root_rows", chain_rows_json(chains.private_root_rows)},
      {"self_signed_rows", chain_rows_json(chains.self_signed_rows)},
      {"expired", std::move(expired)},
      {"cn_mismatches", static_cast<std::int64_t>(chains.cn_mismatches.size())},
      {"private_leaf_failure_ratio", chains.private_leaf_failure_ratio},
  });
}

obs::Json report_issuers(StreamIngest& ingest, const core::CertDataset& certs) {
  core::IssuerReport issuers =
      core::issuer_report(certs, ingest.world().issuer_is_public);
  obs::Json::Object share;
  for (const auto& [org, ratio] : issuers.issuer_share) {
    share.emplace_back(org, ratio);
  }
  return obs::Json(obs::Json::Object{
      {"report", "issuers"},
      {"issuer_organizations",
       static_cast<std::int64_t>(issuers.issuer_organizations)},
      {"leaves", static_cast<std::int64_t>(issuers.leaves)},
      {"private_leaves", static_cast<std::int64_t>(issuers.private_leaves)},
      {"private_ratio", issuers.private_ratio},
      {"issuer_share", std::move(share)},
      {"public_only_vendors", set_json(issuers.public_only_vendors)},
      {"self_signing_vendors", set_json(issuers.self_signing_vendors)},
      {"vendor_only_vendors", set_json(issuers.vendor_only_vendors)},
  });
}

obs::Json report_ct(StreamIngest& ingest, const core::CertDataset& certs) {
  core::CtReport ct =
      core::ct_report(certs, ingest.world(), ingest.config().jobs);
  obs::Json::Array anomalies;
  for (const core::CtPoint& p : ct.public_not_logged) {
    anomalies.emplace_back(obs::Json::Object{
        {"sni", p.sni},
        {"vendor", p.vendor},
        {"issuer", p.leaf_issuer},
    });
  }
  return obs::Json(obs::Json::Object{
      {"report", "ct"},
      {"tuples", static_cast<std::int64_t>(ct.tuples)},
      {"public_leaves", static_cast<std::int64_t>(ct.public_leaves)},
      {"public_leaves_in_ct",
       static_cast<std::int64_t>(ct.public_leaves_in_ct)},
      {"public_not_logged", std::move(anomalies)},
      {"private_leaves", static_cast<std::int64_t>(ct.private_leaves)},
      {"private_leaves_in_ct",
       static_cast<std::int64_t>(ct.private_leaves_in_ct)},
      {"max_public_validity", ct.max_public_validity},
      {"max_private_validity", ct.max_private_validity},
  });
}

/// Vendor sets per SNI, for annotating stack clusters with who talks to
/// the servers behind them.
std::map<std::string, const core::SniRecord*> record_index(
    const core::CertDataset& certs) {
  std::map<std::string, const core::SniRecord*> out;
  for (const core::SniRecord& record : certs.records()) {
    out[record.sni] = &record;
  }
  return out;
}

obs::Json report_stacks(StreamIngest& ingest, const core::CertDataset& certs) {
  // Server-side dual of Table 4/5: instead of clustering *clients* by the
  // fingerprints they send, cluster *servers* by the stack fingerprint the
  // battery elicits. Clusters are keyed on the New York / IPv4 digest (the
  // paper's primary vantage).
  const net::StackSurvey& survey = ingest.stacks();
  auto record_of = record_index(certs);

  struct Cluster {
    std::vector<std::string> servers;  // records() order == lexicographic
    std::set<std::string> vendors;
  };
  std::map<std::string, Cluster> clusters;
  std::size_t fingerprinted = 0;
  std::size_t unanswered = 0;
  for (const net::ServerStackResult& result : survey.results) {
    const net::StackFingerprint* fp =
        result.at(net::VantagePoint::kNewYork, net::AddressFamily::kIPv4);
    if (fp == nullptr || !fp->answered) {
      ++unanswered;
      continue;
    }
    ++fingerprinted;
    Cluster& cluster = clusters[fp->digest];
    cluster.servers.push_back(result.sni);
    auto it = record_of.find(result.sni);
    if (it != record_of.end()) {
      cluster.vendors.insert(it->second->vendors.begin(),
                             it->second->vendors.end());
    }
  }

  // Rows: clusters of >= 2 servers, largest first, digest breaking ties.
  std::vector<std::pair<std::string, const Cluster*>> ordered;
  for (const auto& [digest, cluster] : clusters) {
    if (cluster.servers.size() >= 2) ordered.emplace_back(digest, &cluster);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.second->servers.size() != b.second->servers.size()) {
                return a.second->servers.size() > b.second->servers.size();
              }
              return a.first < b.first;
            });

  std::size_t clustered_servers = 0;
  std::size_t cross_vendor_clusters = 0;
  obs::Json::Array rows;
  for (const auto& [digest, cluster] : ordered) {
    clustered_servers += cluster->servers.size();
    bool cross_vendor = cluster->vendors.size() > 1;
    if (cross_vendor) ++cross_vendor_clusters;
    obs::Json::Array fqdns;
    for (std::size_t i = 0; i < cluster->servers.size() && i < 5; ++i) {
      fqdns.emplace_back(cluster->servers[i]);
    }
    rows.emplace_back(obs::Json::Object{
        {"digest", digest},
        {"servers", static_cast<std::int64_t>(cluster->servers.size())},
        {"example_fqdns", obs::Json(std::move(fqdns))},
        {"vendors", set_json(cluster->vendors)},
        {"cross_vendor", cross_vendor},
    });
  }

  return obs::Json(obs::Json::Object{
      {"report", "stacks"},
      {"battery",
       static_cast<std::int64_t>(
           net::StackFingerprinter::standard_battery().size())},
      {"servers_fingerprinted", static_cast<std::int64_t>(fingerprinted)},
      {"unanswered", static_cast<std::int64_t>(unanswered)},
      {"distinct_stacks", static_cast<std::int64_t>(clusters.size())},
      {"clustered_servers", static_cast<std::int64_t>(clustered_servers)},
      {"cross_vendor_clusters",
       static_cast<std::int64_t>(cross_vendor_clusters)},
      {"rows", std::move(rows)},
  });
}

obs::Json report_dualstack(StreamIngest& ingest,
                           const core::CertDataset& certs) {
  // Table 16 extended across address families: does the v6 frontend serve
  // the same stack and certificate the v4 frontend does? Compared at New
  // York, the paper's primary vantage.
  const net::StackSurvey& survey = ingest.stacks();
  auto record_of = record_index(certs);

  std::size_t snis = 0;
  std::size_t v4_unanswered = 0;
  std::size_t v6_absent = 0;
  std::size_t consistent = 0;
  std::size_t stack_divergent = 0;
  std::size_t cert_divergent = 0;
  obs::Json::Array rows;
  for (const net::ServerStackResult& result : survey.results) {
    ++snis;
    const net::StackFingerprint* v4 =
        result.at(net::VantagePoint::kNewYork, net::AddressFamily::kIPv4);
    const net::StackFingerprint* v6 =
        result.at(net::VantagePoint::kNewYork, net::AddressFamily::kIPv6);
    if (v4 == nullptr || !v4->answered) {
      ++v4_unanswered;
      continue;
    }
    if (v6 == nullptr || !v6->answered) {
      ++v6_absent;  // no AAAA record (or a dark v6 frontend)
      continue;
    }
    bool stack_div = v4->digest != v6->digest;
    bool cert_div = !v4->leaf_fp.empty() && !v6->leaf_fp.empty() &&
                    v4->leaf_fp != v6->leaf_fp;
    if (!stack_div && !cert_div) {
      ++consistent;
      continue;
    }
    if (stack_div) ++stack_divergent;
    if (cert_div) ++cert_divergent;
    std::set<std::string> vendors;
    auto it = record_of.find(result.sni);
    if (it != record_of.end()) vendors = it->second->vendors;
    rows.emplace_back(obs::Json::Object{
        {"sni", result.sni},
        {"stack_divergent", stack_div},
        {"cert_divergent", cert_div},
        {"v4_digest", v4->digest},
        {"v6_digest", v6->digest},
        {"vendors", set_json(vendors)},
    });
  }

  return obs::Json(obs::Json::Object{
      {"report", "dualstack"},
      {"snis", static_cast<std::int64_t>(snis)},
      {"v4_unanswered", static_cast<std::int64_t>(v4_unanswered)},
      {"v6_absent", static_cast<std::int64_t>(v6_absent)},
      {"consistent", static_cast<std::int64_t>(consistent)},
      {"stack_divergent", static_cast<std::int64_t>(stack_divergent)},
      {"cert_divergent", static_cast<std::int64_t>(cert_divergent)},
      {"rows", std::move(rows)},
  });
}

obs::Json error_doc(const std::string& message) {
  return obs::Json(obs::Json::Object{{"error", message}});
}

}  // namespace

const std::vector<std::string>& report_names() {
  static const std::vector<std::string> names = {
      "table02", "table03", "table04", "table05", "certs",
      "chains",  "issuers", "ct",      "stacks",  "dualstack",
  };
  return names;
}

std::optional<obs::Json> render_report(const std::string& name,
                                       StreamIngest& ingest) {
  const core::ClientDataset& ds = ingest.client();
  if (name == "table02") return report_table02(ds);
  if (name == "table03") return report_table03(ds);
  if (name == "table04") return report_table04(ds);
  if (name == "table05") return report_table05(ds);

  if (name == "certs" || name == "chains" || name == "issuers" ||
      name == "ct" || name == "stacks" || name == "dualstack") {
    const core::CertDataset* certs = ingest.certs();
    if (certs == nullptr) {
      return error_doc(ingest.config().certs
                           ? "no epoch folded yet"
                           : "daemon running without --certs");
    }
    if (name == "certs") return report_certs(*certs);
    if (name == "chains") return report_chains(ingest, *certs);
    if (name == "issuers") return report_issuers(ingest, *certs);
    if (name == "stacks") return report_stacks(ingest, *certs);
    if (name == "dualstack") return report_dualstack(ingest, *certs);
    return report_ct(ingest, *certs);
  }
  return std::nullopt;
}

}  // namespace iotls::stream

// Live report documents served by iotlsd's /report/<name> endpoints.
//
// Every report is a deterministic obs::Json document computed from the
// ingest's *current* datasets. The same functions back `iotls_audit
// --report=<name>` in batch mode, which is what makes the daemon's
// byte-identity contract checkable end to end: epoch-N streamed output ==
// cold batch output over the same event prefix, compared as bytes.
//
// Report docs intentionally carry no epoch/timestamp fields — ingest
// progress lives on /epoch — so the comparison is over analysis content
// only.
//
// Client-side (always available):
//   table02  fingerprint degree distribution (§4.2, Table 2)
//   table03  per-vendor heterogeneity, top 10 by fingerprints (Table 3)
//   table04  vendor-pair Jaccard similarities >= 0.2 (§4.4, Table 4)
//   table05  server-tied fingerprints, cross-vendor rows (Table 5)
//
// Server-side (certs mode only; absent otherwise):
//   certs      §5.1 probe funnel + certificate sharing stats
//   chains     §5.3 validation outcomes (Tables 7/8/14 aggregates)
//   issuers    §5.2 issuer mix
//   ct         §5.4 CT coverage
//   stacks     active stack-fingerprint clusters — the server-side dual of
//              Table 4/5 (docs/FINGERPRINTING.md §5)
//   dualstack  v4-vs-v6 stack/cert consistency — Table 16 extended across
//              address families (docs/FINGERPRINTING.md §5)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "stream/ingest.hpp"

namespace iotls::stream {

/// Names render_report understands, in serving order. Cert-mode names are
/// included regardless of whether the ingest has certs enabled (the route
/// table is static; the handler answers 404-equivalent docs at runtime).
const std::vector<std::string>& report_names();

/// Render report `name` over the ingest's current datasets. nullopt for an
/// unknown name. For a server-side report on an ingest without certs (or
/// before the first fold), returns a {"error": ...} document.
std::optional<obs::Json> render_report(const std::string& name,
                                       StreamIngest& ingest);

}  // namespace iotls::stream

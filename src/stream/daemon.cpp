#include "stream/daemon.hpp"

namespace iotls::stream {

SurveyDaemon::SurveyDaemon(std::vector<devicesim::Device> devices,
                           IngestConfig config)
    : ingest_(std::move(devices), config) {}

bool SurveyDaemon::start(std::uint16_t port, std::string* error) {
  obs::HttpServer& server = plane_.server();

  server.handle("/epoch", [this](const obs::HttpRequest&) {
    std::lock_guard<std::mutex> lock(mu_);
    obs::Json doc(obs::Json::Object{
        {"epoch", static_cast<std::int64_t>(ingest_.epoch())},
        {"events", static_cast<std::int64_t>(ingest_.events_ingested())},
        {"watermark_day", ingest_.watermark_day()},
        {"snis", static_cast<std::int64_t>(ingest_.client().index().snis().size())},
        {"fingerprints",
         static_cast<std::int64_t>(ingest_.client().index().fps().size())},
        {"certs", ingest_.config().certs},
    });
    return obs::HttpResponse::json(200, doc.dump() + "\n");
  });

  for (const std::string& name : report_names()) {
    server.handle("/report/" + name, [this, name](const obs::HttpRequest&) {
      std::lock_guard<std::mutex> lock(mu_);
      if (ingest_.epoch() == 0) {
        return obs::HttpResponse::json(
            503, obs::Json(obs::Json::Object{{"error", "no epoch folded yet"}})
                         .dump() +
                     "\n");
      }
      std::optional<obs::Json> doc = render_report(name, ingest_);
      if (!doc.has_value()) {
        return obs::HttpResponse::text(404, "no such report: " + name + "\n");
      }
      int status = doc->find("error") != nullptr ? 503 : 200;
      return obs::HttpResponse::json(status, doc->dump() + "\n");
    });
  }

  return plane_.start(port, error);
}

bool SurveyDaemon::step(EventSource& source) {
  std::optional<EventBatch> batch = source.next_epoch();
  if (!batch.has_value()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  ingest_.fold_epoch(batch->events);
  return true;
}

std::size_t SurveyDaemon::drain(EventSource& source) {
  std::size_t folded = 0;
  while (step(source)) ++folded;
  return folded;
}

}  // namespace iotls::stream

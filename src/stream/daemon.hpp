// SurveyDaemon: the resident incremental survey process behind iotlsd.
//
// Glues an EventSource, a StreamIngest and the obs::ExportPlane together:
// the run loop pulls epochs from the source and folds them; the plane's
// HTTP server answers live queries between (and during) folds. Routes, on
// top of the plane's standard set (/metrics /stats /healthz /readyz /trace
// /quitquitquit):
//
//   GET /epoch           {"epoch":N,"events":M,"watermark_day":D,...}
//   GET /report/<name>   the stream report document (see stream/reports),
//                        one per name in report_names()
//
// Handlers run on the HTTP pool; folds run on the caller of run()/step().
// Both sides serialize on one mutex, so a scrape mid-fold sees the last
// fully folded epoch, never a half-built index.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "obs/export_plane.hpp"
#include "stream/ingest.hpp"
#include "stream/reports.hpp"
#include "stream/source.hpp"

namespace iotls::stream {

class SurveyDaemon {
 public:
  /// `ingest` configuration as for StreamIngest; the daemon owns the ingest.
  SurveyDaemon(std::vector<devicesim::Device> devices, IngestConfig config);

  SurveyDaemon(const SurveyDaemon&) = delete;
  SurveyDaemon& operator=(const SurveyDaemon&) = delete;

  /// Mount /epoch and /report/* and start serving on 127.0.0.1:`port`
  /// (0 = ephemeral). False + `error` when the socket cannot be bound.
  bool start(std::uint16_t port, std::string* error = nullptr);

  std::uint16_t port() const { return plane_.port(); }

  /// Pull one epoch from `source` and fold it. False when the source is
  /// drained (nothing folded).
  bool step(EventSource& source);

  /// Drain `source` completely (ReplaySource) — folds until drained.
  /// Returns the number of epochs folded.
  std::size_t drain(EventSource& source);

  /// Block until /quitquitquit (or request_stop()); `timeout_ms` > 0 bounds
  /// the wait. True when released by an explicit stop.
  bool wait_for_shutdown(std::uint64_t timeout_ms = 0) {
    return plane_.wait_for_shutdown(timeout_ms);
  }
  void request_stop() { plane_.request_stop(); }

  /// Stop serving (idempotent).
  void stop() { plane_.stop(); }

  /// The ingest, for direct inspection in tests and tools. Callers must
  /// not mutate concurrently with a running server's handlers.
  StreamIngest& ingest() { return ingest_; }
  std::mutex& mutex() { return mu_; }

 private:
  StreamIngest ingest_;
  obs::ExportPlane plane_;
  std::mutex mu_;  // serializes folds against HTTP handlers
};

}  // namespace iotls::stream

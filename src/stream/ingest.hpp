// StreamIngest: the epoch-based incremental fold behind iotlsd.
//
// Owns the growing ClientDataset (and, with certs enabled, the per-epoch
// CertDataset rebuild), folding one epoch of raw events at a time:
//
//   fold_epoch(events):
//     1. client.append_events(events)  — parallel parse, sequential fold
//        appended after everything already ingested;
//     2. client.finalize()             — delta re-sort of dirty posting-list
//        rows, full bitset/permutation rebuild;
//     3. (certs) CertDataset::collect  — membership recomputed from the
//        client index, probes served from the ProbeMemo so only SNIs never
//        seen before hit the (possibly fault-injected) network.
//
// The contract the daemon's tests pin down: after folding epochs e1..eN,
// every dataset and report is byte-identical to a cold batch run over the
// concatenation e1 ‖ … ‖ eN — at any --jobs level, with or without fault
// injection (the FaultInjector seeds per (SNI, vantage, attempt), so a
// delta probe draws the same faults the batch probe would).
//
// Thread-compat: fold_epoch and the accessors must not race; the daemon
// serializes them behind its own mutex. Within a fold, `jobs` workers are
// used for the parse/probe phases exactly as in batch mode.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/cert_dataset.hpp"
#include "core/dataset.hpp"
#include "devicesim/scenario.hpp"
#include "net/fault.hpp"
#include "net/stack_fingerprint.hpp"
#include "x509/validation.hpp"

namespace iotls::stream {

struct IngestConfig {
  tls::FingerprintOptions fp_opts;
  int jobs = 1;
  /// Build the §5 server-side dataset after every epoch fold.
  bool certs = false;
  /// Minimum distinct users before an SNI is probed (CertDataset::collect).
  std::size_t min_users = 1;
  /// Probe day used by the chain-validation report (2022-04-15 default,
  /// the batch tools' probe day).
  std::int64_t validation_day = 19097;
  /// Fault schedule applied to the probe path when spec.any().
  net::FaultSpec fault;
  /// Retain parsed events in client().events(). The streaming report path
  /// turns this off: every stream report is index/CertDataset-backed, so
  /// dropping the per-event rows keeps the fold's resident memory
  /// O(distinct fingerprints) instead of O(total events) — the fleet-scale
  /// mode. Reports stay byte-identical either way.
  bool retain_events = true;
};

class StreamIngest {
 public:
  /// `devices` is the fleet's device table (events referencing unknown
  /// devices are dropped and counted, exactly as in batch mode).
  explicit StreamIngest(std::vector<devicesim::Device> devices,
                        IngestConfig config = {});
  ~StreamIngest();

  StreamIngest(const StreamIngest&) = delete;
  StreamIngest& operator=(const StreamIngest&) = delete;

  /// Fold one epoch of raw events; returns the epoch number (1-based).
  /// An empty epoch still advances the epoch counter (a heartbeat).
  std::uint64_t fold_epoch(const std::vector<devicesim::ClientHelloEvent>& events);

  const core::ClientDataset& client() const { return client_; }
  /// Non-null once certs are enabled and at least one epoch has folded.
  const core::CertDataset* certs() const {
    return certs_.has_value() ? &*certs_ : nullptr;
  }

  /// Active stack-fingerprint survey (dual-stack battery) over the cert
  /// dataset's SNIs, in records() order. Lazily run on first call after a
  /// fold and memoized per SNI across epochs — only SNIs never fingerprinted
  /// before hit the network, through a battery-private FaultInjector (its
  /// attempt counters must not interleave with the cert prober's), so the
  /// streamed survey is byte-identical to a cold batch run. Requires certs
  /// mode and at least one folded epoch; throws std::logic_error otherwise.
  const net::StackSurvey& stacks();

  /// The simulated world certs are probed against (built iff config.certs).
  const devicesim::SimWorld& world() const { return *world_; }
  x509::ValidationCache& validation_cache() { return vcache_; }
  const IngestConfig& config() const { return config_; }

  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t events_ingested() const { return events_ingested_; }
  /// Highest capture day folded so far (the ingest watermark; -1 before
  /// the first event).
  std::int64_t watermark_day() const { return watermark_day_; }

 private:
  IngestConfig config_;
  std::vector<devicesim::Device> devices_;
  core::ClientDataset client_;
  std::optional<core::CertDataset> certs_;
  std::unique_ptr<devicesim::SimWorld> world_;
  std::unique_ptr<net::FaultInjector> injector_;
  core::ProbeMemo memo_;
  std::optional<net::StackSurvey> stacks_;  // assembled view, reset per fold
  std::map<std::string, net::ServerStackResult> stack_memo_;
  net::StackSurveySummary stack_summary_;   // accumulates fresh batches
  std::unique_ptr<net::FaultInjector> stack_injector_;
  x509::ValidationCache vcache_;
  std::uint64_t epoch_ = 0;
  std::uint64_t events_ingested_ = 0;
  std::int64_t watermark_day_ = -1;
};

}  // namespace iotls::stream

#include "stream/ingest.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace iotls::stream {

StreamIngest::StreamIngest(std::vector<devicesim::Device> devices,
                           IngestConfig config)
    : config_(config), devices_(std::move(devices)) {
  client_.set_retain_events(config_.retain_events);
  if (config_.certs) {
    world_ = std::make_unique<devicesim::SimWorld>(
        devicesim::build_world(devicesim::ServerUniverse::standard()));
    if (config_.fault.any()) {
      injector_ = std::make_unique<net::FaultInjector>(world_->internet,
                                                       config_.fault);
    }
  }
}

StreamIngest::~StreamIngest() = default;

std::uint64_t StreamIngest::fold_epoch(
    const std::vector<devicesim::ClientHelloEvent>& events) {
  static obs::Histogram& fold_ns =
      obs::metrics().histogram("stream.epoch_fold_ns");
  auto span = obs::tracer().span("stream.epoch_fold");
  {
    obs::ScopedTimer timer(fold_ns);

    client_.append_events(events, devices_, config_.fp_opts, config_.jobs);
    client_.finalize();
    for (const devicesim::ClientHelloEvent& ev : events) {
      watermark_day_ = std::max(watermark_day_, ev.day);
    }

    if (config_.certs) {
      certs_ = core::CertDataset::collect(
          client_, *world_, config_.min_users, config_.jobs, &vcache_,
          injector_ != nullptr ? injector_.get() : nullptr, &memo_);
    }
  }

  ++epoch_;
  events_ingested_ += events.size();
  obs::metrics().gauge("stream.epoch").set(static_cast<std::int64_t>(epoch_));
  obs::metrics().gauge("stream.events_ingested")
      .set(static_cast<std::int64_t>(events_ingested_));
  obs::metrics().gauge("stream.watermark_day").set(watermark_day_);
  obs::logger().info("epoch folded",
                     {{"epoch", std::to_string(epoch_)},
                      {"events", std::to_string(events.size())},
                      {"snis", std::to_string(client_.index().snis().size())}});
  return epoch_;
}

}  // namespace iotls::stream

#include "stream/ingest.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace iotls::stream {

StreamIngest::StreamIngest(std::vector<devicesim::Device> devices,
                           IngestConfig config)
    : config_(config), devices_(std::move(devices)) {
  client_.set_retain_events(config_.retain_events);
  if (config_.certs) {
    world_ = std::make_unique<devicesim::SimWorld>(
        devicesim::build_world(devicesim::ServerUniverse::standard()));
    if (config_.fault.any()) {
      injector_ = std::make_unique<net::FaultInjector>(world_->internet,
                                                       config_.fault);
    }
  }
}

StreamIngest::~StreamIngest() = default;

std::uint64_t StreamIngest::fold_epoch(
    const std::vector<devicesim::ClientHelloEvent>& events) {
  static obs::Histogram& fold_ns =
      obs::metrics().histogram("stream.epoch_fold_ns");
  auto span = obs::tracer().span("stream.epoch_fold");
  {
    obs::ScopedTimer timer(fold_ns);

    client_.append_events(events, devices_, config_.fp_opts, config_.jobs);
    client_.finalize();
    for (const devicesim::ClientHelloEvent& ev : events) {
      watermark_day_ = std::max(watermark_day_, ev.day);
    }

    if (config_.certs) {
      certs_ = core::CertDataset::collect(
          client_, *world_, config_.min_users, config_.jobs, &vcache_,
          injector_ != nullptr ? injector_.get() : nullptr, &memo_);
      stacks_.reset();  // membership may have grown; reassemble on demand
    }
  }

  ++epoch_;
  events_ingested_ += events.size();
  obs::metrics().gauge("stream.epoch").set(static_cast<std::int64_t>(epoch_));
  obs::metrics().gauge("stream.events_ingested")
      .set(static_cast<std::int64_t>(events_ingested_));
  obs::metrics().gauge("stream.watermark_day").set(watermark_day_);
  obs::logger().info("epoch folded",
                     {{"epoch", std::to_string(epoch_)},
                      {"events", std::to_string(events.size())},
                      {"snis", std::to_string(client_.index().snis().size())}});
  return epoch_;
}

const net::StackSurvey& StreamIngest::stacks() {
  if (stacks_.has_value()) return *stacks_;
  if (!certs_.has_value()) {
    throw std::logic_error("stacks(): certs mode with >=1 folded epoch required");
  }

  // Battery only the SNIs this ingest has never fingerprinted. Per-SNI
  // results are pure (the battery visits one SNI's probes in a fixed
  // family-major order and the injector's decision streams are keyed per
  // (SNI, vantage, attempt)), so epoch-by-epoch fresh batches compose to
  // the same bytes a cold batch survey produces.
  std::vector<std::string> all;
  std::vector<std::string> fresh;
  all.reserve(certs_->records().size());
  for (const core::SniRecord& record : certs_->records()) {
    all.push_back(record.sni);
    if (stack_memo_.count(record.sni) == 0) fresh.push_back(record.sni);
  }

  if (!fresh.empty()) {
    const net::Internet* internet = &world_->internet;
    if (config_.fault.any()) {
      // Battery-private injector: the cert prober's attempt counters must
      // keep their historical sequence.
      if (stack_injector_ == nullptr) {
        stack_injector_ = std::make_unique<net::FaultInjector>(world_->internet,
                                                               config_.fault);
      }
      internet = stack_injector_.get();
    }
    net::StackFingerprinter fingerprinter(*internet);
    fingerprinter.set_families(
        {net::AddressFamily::kIPv4, net::AddressFamily::kIPv6});
    fingerprinter.set_jobs(config_.jobs);
    if (config_.fault.any()) {
      net::RetryPolicy retry;
      retry.max_attempts = 3;  // ride out injected weather, deterministically
      fingerprinter.set_retry_policy(retry);
    }
    net::StackSurvey batch = fingerprinter.survey(fresh);
    for (net::ServerStackResult& result : batch.results) {
      std::string sni = result.sni;
      stack_memo_[std::move(sni)] = std::move(result);
    }
    stack_summary_.merge(batch.summary);
  }

  net::StackSurvey assembled;
  assembled.summary = stack_summary_;
  assembled.results.reserve(all.size());
  for (const std::string& sni : all) {
    assembled.results.push_back(stack_memo_.at(sni));
  }
  stacks_ = std::move(assembled);
  return *stacks_;
}

}  // namespace iotls::stream

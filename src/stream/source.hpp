// Epoch-batched event sources for the incremental survey daemon.
//
// An EventSource hands the ingest loop one epoch of ClientHello events at a
// time. Epoch boundaries are a delivery artifact, not a semantic one: the
// ingest fold is append-only and order-preserving, so any epoching of one
// event stream produces the same dataset as a single batch over the
// concatenation. Two sources ship:
//
//   * ReplaySource — slices an in-memory event vector into a fixed number
//     of epochs (the batch tools' degenerate mode is one epoch);
//   * TailSource — follows a growing events CSV on disk, emitting the
//     complete rows appended since the previous poll. A partial last line
//     (a writer mid-append) is left for the next poll, so a row is never
//     split across epochs;
//   * SnapshotSource — replays a columnar .iotlsnap container in
//     fixed-size chunks, materializing each chunk only when asked for, so
//     a fleet-scale snapshot streams through the fold with O(chunk)
//     resident event rows.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "devicesim/types.hpp"
#include "fleetio/snapshot.hpp"

namespace iotls::stream {

/// One epoch's worth of raw events.
struct EventBatch {
  std::vector<devicesim::ClientHelloEvent> events;
};

class EventSource {
 public:
  virtual ~EventSource() = default;

  /// The next epoch, or nullopt when the source is (currently) drained.
  /// A drained ReplaySource stays drained; a drained TailSource may yield
  /// again once the file grows.
  virtual std::optional<EventBatch> next_epoch() = 0;
};

/// Replays an in-memory event stream across `epochs` contiguous slices
/// (the final slice absorbs the remainder). `epochs` is clamped to
/// [1, events.size()] so every epoch is non-empty when events exist.
class ReplaySource final : public EventSource {
 public:
  ReplaySource(std::vector<devicesim::ClientHelloEvent> events,
               std::size_t epochs);

  std::optional<EventBatch> next_epoch() override;

  std::size_t epochs() const { return epochs_; }

 private:
  std::vector<devicesim::ClientHelloEvent> events_;
  std::size_t epochs_ = 1;
  std::size_t next_ = 0;       // next event index to emit
  std::size_t emitted_ = 0;    // epochs emitted so far
};

/// Follows an events CSV being appended to. Each next_epoch() reads the
/// bytes appended since the previous call and parses the complete lines in
/// them; the header (first line) establishes the column layout. Rows that
/// fail to parse are counted and skipped, not fatal — a tailed file may
/// interleave foreign junk.
class TailSource final : public EventSource {
 public:
  explicit TailSource(std::string path);

  std::optional<EventBatch> next_epoch() override;

  std::uint64_t malformed_rows() const { return malformed_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;   // bytes consumed into complete lines
  std::string pending_;        // trailing partial line from the last poll
  bool header_seen_ = false;
  bool has_wire_ = false;
  std::uint64_t malformed_ = 0;
};

/// Replays a snapshot container in `chunk_events`-sized epochs (the final
/// epoch absorbs the remainder; `epochs_hint` instead slices the event
/// range into that many epochs when nonzero, mirroring ReplaySource).
/// Events are materialized per epoch from the mapped columns — the full
/// event vector never exists in memory. `jobs` parallelizes each epoch's
/// materialization; the emitted stream is identical at every jobs level.
class SnapshotSource final : public EventSource {
 public:
  static constexpr std::uint64_t kDefaultChunkEvents = 262144;

  explicit SnapshotSource(fleetio::SnapshotReader reader,
                          std::uint64_t chunk_events = kDefaultChunkEvents,
                          int jobs = 1);

  /// Epoch-count flavour: slice the snapshot into `epochs` even epochs.
  static SnapshotSource with_epochs(fleetio::SnapshotReader reader,
                                    std::size_t epochs, int jobs = 1);

  std::optional<EventBatch> next_epoch() override;

  const fleetio::SnapshotReader& reader() const { return reader_; }

 private:
  fleetio::SnapshotReader reader_;
  std::uint64_t chunk_;
  int jobs_;
  std::uint64_t next_ = 0;
  bool drained_ = false;
};

}  // namespace iotls::stream

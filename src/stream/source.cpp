#include "stream/source.hpp"

#include <algorithm>
#include <cstdio>

#include "devicesim/export.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace iotls::stream {

ReplaySource::ReplaySource(std::vector<devicesim::ClientHelloEvent> events,
                           std::size_t epochs)
    : events_(std::move(events)),
      epochs_(std::clamp<std::size_t>(epochs, 1,
                                      std::max<std::size_t>(events_.size(), 1))) {}

std::optional<EventBatch> ReplaySource::next_epoch() {
  if (events_.empty() || emitted_ >= epochs_) return std::nullopt;
  // Even slices; the final epoch absorbs the rounding remainder.
  std::size_t per_epoch = events_.size() / epochs_;
  std::size_t end = emitted_ + 1 == epochs_ ? events_.size()
                                            : next_ + per_epoch;
  EventBatch batch;
  batch.events.assign(std::make_move_iterator(events_.begin() + next_),
                      std::make_move_iterator(events_.begin() + end));
  next_ = end;
  ++emitted_;
  return batch;
}

TailSource::TailSource(std::string path) : path_(std::move(path)) {}

std::optional<EventBatch> TailSource::next_epoch() {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  if (std::fseek(f, static_cast<long>(offset_), SEEK_SET) != 0) {
    std::fclose(f);
    return std::nullopt;
  }
  std::string fresh;
  char buf[64 * 1024];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) fresh.append(buf, n);
  std::fclose(f);
  if (fresh.empty()) return std::nullopt;
  offset_ += fresh.size();

  fresh.insert(0, pending_);
  pending_.clear();
  // A writer may be mid-append: everything after the last newline is an
  // incomplete row and waits for the next poll.
  std::size_t last_nl = fresh.rfind('\n');
  if (last_nl == std::string::npos) {
    pending_ = std::move(fresh);
    return std::nullopt;
  }
  pending_ = fresh.substr(last_nl + 1);
  fresh.resize(last_nl);

  EventBatch batch;
  std::size_t start = 0;
  while (start <= fresh.size()) {
    std::size_t nl = fresh.find('\n', start);
    std::string line = fresh.substr(
        start, nl == std::string::npos ? std::string::npos : nl - start);
    start = nl == std::string::npos ? fresh.size() + 1 : nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    try {
      if (!header_seen_) {
        has_wire_ = devicesim::events_header_has_wire(line);
        header_seen_ = true;
        continue;
      }
      batch.events.push_back(devicesim::parse_event_row(line, has_wire_));
    } catch (const ParseError&) {
      ++malformed_;
      obs::metrics().counter("stream.tail.malformed_rows").inc();
    }
  }
  if (batch.events.empty()) return std::nullopt;
  return batch;
}

SnapshotSource::SnapshotSource(fleetio::SnapshotReader reader,
                               std::uint64_t chunk_events, int jobs)
    : reader_(std::move(reader)),
      chunk_(std::max<std::uint64_t>(chunk_events, 1)),
      jobs_(jobs) {}

SnapshotSource SnapshotSource::with_epochs(fleetio::SnapshotReader reader,
                                           std::size_t epochs, int jobs) {
  std::uint64_t n = reader.event_count();
  std::uint64_t e = std::clamp<std::uint64_t>(epochs, 1,
                                              std::max<std::uint64_t>(n, 1));
  // Ceiling division so exactly `e` epochs come out (the last one short).
  return SnapshotSource(std::move(reader), (n + e - 1) / e, jobs);
}

std::optional<EventBatch> SnapshotSource::next_epoch() {
  std::uint64_t n = reader_.event_count();
  if (drained_ || next_ >= n) {
    drained_ = true;
    return std::nullopt;
  }
  std::uint64_t end = std::min(n, next_ + chunk_);
  EventBatch batch;
  batch.events = reader_.events(next_, end, jobs_);
  next_ = end;
  return batch;
}

}  // namespace iotls::stream

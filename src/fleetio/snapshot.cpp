#include "fleetio/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>

#include "core/interner.hpp"
#include "exec/pool.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "util/arena.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define IOTLS_SNAPSHOT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace iotls::fleetio {

namespace {

constexpr std::size_t kSectionCount = 9;
constexpr std::size_t kMaxVarintBytes = 10;

std::uint32_t be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

std::uint64_t be64(const std::uint8_t* p) {
  return (std::uint64_t{be32(p)} << 32) | be32(p + 4);
}

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(Bytes& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^ -static_cast<std::int64_t>(u & 1);
}

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decode one LEB128 varint from `data` at `pos`, advancing it. Throws
/// ParseError on truncation or an over-long encoding.
std::uint64_t take_varint(BytesView data, std::uint64_t& pos) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (pos >= data.size())
      throw ParseError("snapshot day column: truncated varint");
    std::uint8_t byte = data[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) return value;
  }
  throw ParseError("snapshot day column: varint longer than 10 bytes");
}

const char* section_name(SectionKind kind) {
  switch (kind) {
    case SectionKind::kStringOffsets: return "string_offsets";
    case SectionKind::kStringBlob: return "string_blob";
    case SectionKind::kDevices: return "devices";
    case SectionKind::kUsers: return "users";
    case SectionKind::kEventDevice: return "event_device";
    case SectionKind::kEventSni: return "event_sni";
    case SectionKind::kEventDay: return "event_day";
    case SectionKind::kWireOffsets: return "wire_offsets";
    case SectionKind::kWireBlob: return "wire_blob";
  }
  return "?";
}

std::size_t align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

}  // namespace

// ---------------------------------------------------------------------------
// Encode

Bytes encode_snapshot(const devicesim::FleetDataset& fleet) {
  // Scratch that dies at return: offset arrays sized by row count. The
  // arena keeps them off the general heap and on the snapshot gauges.
  ArenaAllocator arena(1 << 20, &obs::snapshot_arena());

  // One interner covers every string column. Intern in a fixed traversal
  // order (devices, then users, then events) so ids — and therefore the
  // container bytes — are a pure function of the fleet.
  core::Interner strings;

  const std::size_t n_dev = fleet.devices.size();
  const std::size_t n_usr = fleet.users.size();
  const std::size_t n_ev = fleet.events.size();

  Bytes devices_sec;
  devices_sec.reserve(n_dev * 16);
  for (const auto& d : fleet.devices) {
    put_u32(devices_sec, strings.intern(d.id));
    put_u32(devices_sec, strings.intern(d.vendor));
    put_u32(devices_sec, strings.intern(d.type));
    put_u32(devices_sec, strings.intern(d.user_id));
  }

  Bytes users_sec;
  users_sec.reserve(n_usr * 4);
  for (const auto& u : fleet.users) put_u32(users_sec, strings.intern(u));

  Bytes ev_device_sec, ev_sni_sec, ev_day_sec, wire_blob_sec;
  ev_device_sec.reserve(n_ev * 4);
  ev_sni_sec.reserve(n_ev * 4);
  ev_day_sec.reserve(n_ev * 2);
  std::uint64_t* wire_offsets = arena.allocate_array<std::uint64_t>(n_ev + 1);
  std::uint64_t wire_total = 0;
  for (const auto& ev : fleet.events) wire_total += ev.wire.size();
  wire_blob_sec.reserve(wire_total);
  std::int64_t prev_day = 0;
  wire_offsets[0] = 0;
  for (std::size_t i = 0; i < n_ev; ++i) {
    const auto& ev = fleet.events[i];
    put_u32(ev_device_sec, strings.intern(ev.device_id));
    put_u32(ev_sni_sec, strings.intern(ev.sni));
    put_varint(ev_day_sec, zigzag_encode(ev.day - prev_day));
    prev_day = ev.day;
    wire_blob_sec.insert(wire_blob_sec.end(), ev.wire.begin(), ev.wire.end());
    wire_offsets[i + 1] = wire_blob_sec.size();
  }
  Bytes wire_offsets_sec;
  wire_offsets_sec.reserve((n_ev + 1) * 8);
  for (std::size_t i = 0; i <= n_ev; ++i) put_u64(wire_offsets_sec, wire_offsets[i]);

  const std::uint32_t n_str = strings.size();
  std::uint64_t* str_offsets = arena.allocate_array<std::uint64_t>(n_str + 1);
  std::uint64_t blob_total = 0;
  str_offsets[0] = 0;
  for (std::uint32_t id = 0; id < n_str; ++id) {
    blob_total += strings.str(id).size();
    str_offsets[id + 1] = blob_total;
  }
  Bytes string_offsets_sec;
  string_offsets_sec.reserve((n_str + 1) * 8);
  for (std::uint32_t id = 0; id <= n_str; ++id) put_u64(string_offsets_sec, str_offsets[id]);
  Bytes string_blob_sec;
  string_blob_sec.reserve(blob_total);
  for (std::uint32_t id = 0; id < n_str; ++id) {
    const std::string& s = strings.str(id);
    string_blob_sec.insert(string_blob_sec.end(), s.begin(), s.end());
  }

  const std::pair<SectionKind, const Bytes*> payloads[kSectionCount] = {
      {SectionKind::kStringOffsets, &string_offsets_sec},
      {SectionKind::kStringBlob, &string_blob_sec},
      {SectionKind::kDevices, &devices_sec},
      {SectionKind::kUsers, &users_sec},
      {SectionKind::kEventDevice, &ev_device_sec},
      {SectionKind::kEventSni, &ev_sni_sec},
      {SectionKind::kEventDay, &ev_day_sec},
      {SectionKind::kWireOffsets, &wire_offsets_sec},
      {SectionKind::kWireBlob, &wire_blob_sec},
  };

  const std::size_t header_bytes =
      kSnapshotPreludeBytes + kSectionCount * kSectionEntryBytes;
  std::size_t offset = align8(header_bytes);
  Bytes table;
  table.reserve(kSectionCount * kSectionEntryBytes);
  for (const auto& [kind, payload] : payloads) {
    put_u32(table, static_cast<std::uint32_t>(kind));
    put_u32(table, crc32(BytesView(*payload)));
    put_u64(table, offset);
    put_u64(table, payload->size());
    offset = align8(offset + payload->size());
  }

  Bytes prelude;
  prelude.reserve(kSnapshotPreludeBytes);
  prelude.insert(prelude.end(), kSnapshotMagic, kSnapshotMagic + 8);
  put_u32(prelude, kSnapshotVersion);
  put_u32(prelude, static_cast<std::uint32_t>(kSectionCount));
  put_u64(prelude, n_ev);
  put_u32(prelude, static_cast<std::uint32_t>(n_dev));
  put_u32(prelude, static_cast<std::uint32_t>(n_usr));
  put_u32(prelude, n_str);
  // header_crc covers the prelude with this field zeroed, then the table.
  std::uint32_t header_crc = crc32_update(0, BytesView(prelude));
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  header_crc = crc32_update(header_crc, BytesView(zeros, 4));
  header_crc = crc32_update(header_crc, BytesView(table));
  put_u32(prelude, header_crc);

  Bytes out;
  out.reserve(offset);
  out.insert(out.end(), prelude.begin(), prelude.end());
  out.insert(out.end(), table.begin(), table.end());
  for (const auto& [kind, payload] : payloads) {
    out.resize(align8(out.size()));
    out.insert(out.end(), payload->begin(), payload->end());
  }
  return out;
}

void write_snapshot(const devicesim::FleetDataset& fleet,
                    const std::string& path) {
  Bytes data = encode_snapshot(fleet);
  std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw std::runtime_error("cannot open for write: " + tmp);
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
    if (!f) throw std::runtime_error("short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("cannot rename " + tmp + " -> " + path);
}

// ---------------------------------------------------------------------------
// Reader

/// Owns the bytes behind a reader: either an mmap'd region or a heap
/// buffer. Accounts the resident footprint to `mem.arena.snapshot.*` for
/// the duration of the mapping.
struct SnapshotReader::Mapping {
  Bytes owned;
#if IOTLS_SNAPSHOT_HAVE_MMAP
  void* map = nullptr;
  std::size_t map_size = 0;
#endif
  std::uint64_t accounted = 0;

  BytesView view() const {
#if IOTLS_SNAPSHOT_HAVE_MMAP
    if (map != nullptr)
      return BytesView(static_cast<const std::uint8_t*>(map), map_size);
#endif
    return BytesView(owned);
  }

  void account() {
    accounted = view().size();
    obs::snapshot_arena().allocate(accounted);
  }

  ~Mapping() {
#if IOTLS_SNAPSHOT_HAVE_MMAP
    if (map != nullptr) ::munmap(map, map_size);
#endif
    obs::snapshot_arena().release(accounted);
  }
};

SnapshotReader SnapshotReader::open(const std::string& path) {
  // Timed so the CI fleet phase can read time-to-ready off --stats=json.
  obs::ScopedTimer timer(obs::metrics().histogram("snapshot.open_ns"));
  auto mapping = std::make_shared<Mapping>();
#if IOTLS_SNAPSHOT_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw ParseError("cannot open snapshot: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw ParseError("cannot stat snapshot: " + path);
  }
  std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size > 0) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      mapping->map = map;
      mapping->map_size = size;
    }
  }
  ::close(fd);
  if (mapping->map == nullptr)
#endif
  {
    std::ifstream f(path, std::ios::binary);
    if (!f) throw ParseError("cannot open snapshot: " + path);
    f.seekg(0, std::ios::end);
    std::streamoff len = f.tellg();
    f.seekg(0, std::ios::beg);
    mapping->owned.resize(len > 0 ? static_cast<std::size_t>(len) : 0);
    if (!mapping->owned.empty()) {
      f.read(reinterpret_cast<char*>(mapping->owned.data()),
             static_cast<std::streamsize>(mapping->owned.size()));
      if (!f) throw ParseError("short read on snapshot: " + path);
    }
  }
  mapping->account();
  SnapshotReader reader;
  reader.mapping_ = std::move(mapping);
  reader.data_ = reader.mapping_->view();
  reader.parse_container();
  return reader;
}

SnapshotReader SnapshotReader::from_bytes(Bytes bytes) {
  auto mapping = std::make_shared<Mapping>();
  mapping->owned = std::move(bytes);
  mapping->account();
  SnapshotReader reader;
  reader.mapping_ = std::move(mapping);
  reader.data_ = reader.mapping_->view();
  reader.parse_container();
  return reader;
}

void SnapshotReader::parse_container() {
  if (data_.size() < kSnapshotPreludeBytes)
    throw ParseError("snapshot truncated: shorter than prelude");
  const std::uint8_t* p = data_.data();
  if (std::memcmp(p, kSnapshotMagic, 8) != 0)
    throw ParseError("not a snapshot: bad magic");
  std::uint32_t version = be32(p + 8);
  std::uint32_t section_count = be32(p + 12);
  event_count_ = be64(p + 16);
  device_count_ = be32(p + 24);
  user_count_ = be32(p + 28);
  string_count_ = be32(p + 32);
  std::uint32_t stored_crc = be32(p + 36);

  std::uint64_t table_bytes =
      std::uint64_t{section_count} * kSectionEntryBytes;
  if (section_count > 64 ||
      kSnapshotPreludeBytes + table_bytes > data_.size())
    throw ParseError("snapshot truncated: section table out of bounds");

  std::uint32_t crc = crc32_update(0, data_.subspan(0, 36));
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  crc = crc32_update(crc, BytesView(zeros, 4));
  crc = crc32_update(
      crc, data_.subspan(kSnapshotPreludeBytes, static_cast<std::size_t>(table_bytes)));
  if (crc != stored_crc) throw ParseError("snapshot header CRC mismatch");

  if (version != kSnapshotVersion)
    throw ParseError("unsupported snapshot version " + std::to_string(version) +
                     " (expected " + std::to_string(kSnapshotVersion) + ")");

  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint8_t* e =
        p + kSnapshotPreludeBytes + std::size_t{i} * kSectionEntryBytes;
    std::uint32_t kind = be32(e);
    Section sec;
    sec.crc = be32(e + 4);
    sec.offset = be64(e + 8);
    sec.size = be64(e + 16);
    sec.present = true;
    if (kind == 0 || kind >= std::size(sections_))
      throw ParseError("snapshot: unknown section kind " + std::to_string(kind));
    if (sections_[kind].present)
      throw ParseError("snapshot: duplicate section kind " + std::to_string(kind));
    if (sec.offset > data_.size() || sec.size > data_.size() - sec.offset)
      throw ParseError(std::string("snapshot truncated: section ") +
                       section_name(static_cast<SectionKind>(kind)) +
                       " out of bounds");
    sections_[kind] = sec;
  }

  const struct { SectionKind kind; std::uint64_t expect; } fixed[] = {
      {SectionKind::kStringOffsets, (std::uint64_t{string_count_} + 1) * 8},
      {SectionKind::kDevices, std::uint64_t{device_count_} * 16},
      {SectionKind::kUsers, std::uint64_t{user_count_} * 4},
      {SectionKind::kEventDevice, event_count_ * 4},
      {SectionKind::kEventSni, event_count_ * 4},
      {SectionKind::kWireOffsets, (event_count_ + 1) * 8},
  };
  for (SectionKind kind :
       {SectionKind::kStringOffsets, SectionKind::kStringBlob,
        SectionKind::kDevices, SectionKind::kUsers, SectionKind::kEventDevice,
        SectionKind::kEventSni, SectionKind::kEventDay,
        SectionKind::kWireOffsets, SectionKind::kWireBlob}) {
    if (!sections_[static_cast<std::uint32_t>(kind)].present)
      throw ParseError(std::string("snapshot: missing section ") +
                       section_name(kind));
  }
  for (const auto& [kind, expect] : fixed) {
    if (section(kind).size != expect)
      throw ParseError(std::string("snapshot: section ") + section_name(kind) +
                       " has size " + std::to_string(section(kind).size) +
                       ", expected " + std::to_string(expect));
  }

  // One pass over the day column builds the checkpoint ladder that makes
  // events(begin, end) O(range). Also the column's structural validation:
  // exactly event_count varints, no trailing bytes.
  BytesView days = section_view(SectionKind::kEventDay);
  day_checkpoints_.reserve(
      static_cast<std::size_t>(event_count_ / kDayCheckpointStride) + 1);
  std::uint64_t pos = 0;
  std::int64_t day = 0;
  for (std::uint64_t i = 0; i < event_count_; ++i) {
    if (i % kDayCheckpointStride == 0)
      day_checkpoints_.push_back(DayCheckpoint{pos, day});
    day += zigzag_decode(take_varint(days, pos));
  }
  if (pos != days.size())
    throw ParseError("snapshot day column: trailing bytes");
}

const SnapshotReader::Section& SnapshotReader::section(SectionKind kind) const {
  return sections_[static_cast<std::uint32_t>(kind)];
}

BytesView SnapshotReader::section_view(SectionKind kind) const {
  const Section& sec = section(kind);
  return data_.subspan(static_cast<std::size_t>(sec.offset),
                       static_cast<std::size_t>(sec.size));
}

void SnapshotReader::verify_checksums() const {
  for (std::uint32_t kind = 1; kind < std::size(sections_); ++kind) {
    if (!sections_[kind].present) continue;
    BytesView payload = section_view(static_cast<SectionKind>(kind));
    if (crc32(payload) != sections_[kind].crc)
      throw ParseError(std::string("snapshot: CRC mismatch in section ") +
                       section_name(static_cast<SectionKind>(kind)));
  }
}

std::string_view SnapshotReader::string_at(std::uint32_t id) const {
  if (id >= string_count_)
    throw ParseError("snapshot: string id " + std::to_string(id) +
                     " out of range");
  BytesView offsets = section_view(SectionKind::kStringOffsets);
  BytesView blob = section_view(SectionKind::kStringBlob);
  std::uint64_t lo = be64(offsets.data() + std::size_t{id} * 8);
  std::uint64_t hi = be64(offsets.data() + std::size_t{id} * 8 + 8);
  if (lo > hi || hi > blob.size())
    throw ParseError("snapshot: corrupt string offsets");
  return std::string_view(reinterpret_cast<const char*>(blob.data()) + lo,
                          static_cast<std::size_t>(hi - lo));
}

std::vector<devicesim::Device> SnapshotReader::devices() const {
  BytesView table = section_view(SectionKind::kDevices);
  std::vector<devicesim::Device> out;
  out.reserve(device_count_);
  for (std::uint32_t i = 0; i < device_count_; ++i) {
    const std::uint8_t* row = table.data() + std::size_t{i} * 16;
    out.push_back(devicesim::Device{
        std::string(string_at(be32(row))),
        std::string(string_at(be32(row + 4))),
        std::string(string_at(be32(row + 8))),
        std::string(string_at(be32(row + 12)))});
  }
  return out;
}

std::vector<std::string> SnapshotReader::users() const {
  BytesView ids = section_view(SectionKind::kUsers);
  std::vector<std::string> out;
  out.reserve(user_count_);
  for (std::uint32_t i = 0; i < user_count_; ++i)
    out.emplace_back(string_at(be32(ids.data() + std::size_t{i} * 4)));
  return out;
}

void SnapshotReader::decode_events(std::uint64_t begin, std::uint64_t end,
                                   devicesim::ClientHelloEvent* out) const {
  BytesView dev_ids = section_view(SectionKind::kEventDevice);
  BytesView sni_ids = section_view(SectionKind::kEventSni);
  BytesView days = section_view(SectionKind::kEventDay);
  BytesView wire_offsets = section_view(SectionKind::kWireOffsets);
  BytesView wire_blob = section_view(SectionKind::kWireBlob);

  const DayCheckpoint& cp =
      day_checkpoints_[static_cast<std::size_t>(begin / kDayCheckpointStride)];
  std::uint64_t day_pos = cp.byte_offset;
  std::int64_t day = cp.day;
  for (std::uint64_t i = begin - begin % kDayCheckpointStride; i < begin; ++i)
    day += zigzag_decode(take_varint(days, day_pos));

  for (std::uint64_t i = begin; i < end; ++i) {
    day += zigzag_decode(take_varint(days, day_pos));
    std::uint64_t wlo = be64(wire_offsets.data() + (i * 8));
    std::uint64_t whi = be64(wire_offsets.data() + (i * 8) + 8);
    if (wlo > whi || whi > wire_blob.size())
      throw ParseError("snapshot: corrupt wire offsets");
    devicesim::ClientHelloEvent& ev = out[i - begin];
    ev.device_id = std::string(string_at(be32(dev_ids.data() + i * 4)));
    ev.day = day;
    ev.sni = std::string(string_at(be32(sni_ids.data() + i * 4)));
    ev.wire.assign(wire_blob.begin() + static_cast<std::ptrdiff_t>(wlo),
                   wire_blob.begin() + static_cast<std::ptrdiff_t>(whi));
  }
}

std::vector<devicesim::ClientHelloEvent> SnapshotReader::events(
    std::uint64_t begin, std::uint64_t end, int jobs) const {
  if (begin > end || end > event_count_)
    throw ParseError("snapshot: event range [" + std::to_string(begin) + ", " +
                     std::to_string(end) + ") out of bounds");
  std::vector<devicesim::ClientHelloEvent> out(
      static_cast<std::size_t>(end - begin));
  if (out.empty()) return out;

  // Chunk boundaries sit on absolute multiples of the checkpoint stride so
  // every shard starts exactly at a checkpoint (no varint skip-ahead), and
  // each shard writes its own pre-sized slots — the merge is byte-identical
  // at every jobs level by construction.
  std::uint64_t first_chunk = begin / kDayCheckpointStride;
  std::uint64_t last_chunk = (end - 1) / kDayCheckpointStride;
  std::size_t n_chunks = static_cast<std::size_t>(last_chunk - first_chunk + 1);
  exec::parallel_for(jobs, n_chunks, [&](std::size_t ci) {
    std::uint64_t chunk = first_chunk + ci;
    std::uint64_t lo = std::max(begin, chunk * kDayCheckpointStride);
    std::uint64_t hi = std::min(end, (chunk + 1) * kDayCheckpointStride);
    decode_events(lo, hi, out.data() + (lo - begin));
  });
  return out;
}

devicesim::FleetDataset SnapshotReader::load(int jobs) const {
  obs::ScopedTimer timer(obs::metrics().histogram("snapshot.load_ns"));
  devicesim::FleetDataset fleet;
  fleet.devices = devices();
  fleet.users = users();
  fleet.events = events(0, event_count_, jobs);
  return fleet;
}

}  // namespace iotls::fleetio

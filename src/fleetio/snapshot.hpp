// .iotlsnap — columnar binary snapshot of a FleetDataset.
//
// The CSV interchange format re-parses every byte of every row on load:
// field splitting, integer conversion, hex decoding, and a fresh heap
// string per column. For a 1M-device fleet that is seconds of CPU before
// the pipeline proper even starts. The snapshot container stores the same
// dataset column-wise in its final in-memory shape, so loading is a bounds
// check plus a column walk — O(ms) to open, and event materialization
// parallelizes by slot-indexed chunks with a byte-identical merge.
//
// Layout (all integers big-endian, matching the repo's Reader/Writer and
// TLS wire convention; payload sections 8-byte aligned):
//
//   prelude (40 bytes)
//     0   8  magic "IOTLSNAP"
//     8   4  version (= kSnapshotVersion)
//    12   4  section_count
//    16   8  event_count
//    24   4  device_count
//    28   4  user_count
//    32   4  string_count
//    36   4  header_crc   CRC-32 (ISO-HDLC) over the prelude with this
//                         field zeroed, continued over the section table
//   section table (section_count × 24 bytes)
//         4  kind         SectionKind
//         4  crc          CRC-32 of the section payload
//         8  offset       from file start, 8-byte aligned
//         8  size         payload bytes
//   payloads
//
// Sections (one interned string table serves every string column — device
// ids, vendors, types, users, SNIs — ids are dense uint32 in first-seen
// order exactly like core::Interner):
//
//   string_offsets  (string_count + 1) × u64 into string_blob
//   string_blob     concatenated UTF-8 bytes
//   devices         device_count × {id, vendor, type, user} string ids
//   users           user_count × u32 string id
//   event_device    event_count × u32 string id
//   event_sni       event_count × u32 string id
//   event_day       zigzag LEB128 deltas (day[i] − day[i−1], day[−1] = 0)
//   wire_offsets    (event_count + 1) × u64 into wire_blob
//   wire_blob       concatenated TLS record bytes
//
// Opening validates the prelude, the header CRC, and every section's
// bounds — but not payload CRCs, which would force a full-file read and
// defeat the mmap. verify_checksums() does the full pass; the robustness
// tests and the CSV→snapshot converter call it, steady-state loads do not.
// The day column is decoded once at open into checkpoints every
// kDayCheckpointStride events so events(begin, end) materializes any
// sub-range in O(range) without touching the rest of the column.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "devicesim/types.hpp"
#include "util/bytes.hpp"

namespace iotls::fleetio {

inline constexpr char kSnapshotMagic[8] = {'I', 'O', 'T', 'L', 'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::size_t kSnapshotPreludeBytes = 40;
inline constexpr std::size_t kSectionEntryBytes = 24;
/// Day-column checkpoint spacing: one decoded (offset, day) pair per this
/// many events, so random-range access decodes at most a stride of varints.
inline constexpr std::uint64_t kDayCheckpointStride = 4096;

enum class SectionKind : std::uint32_t {
  kStringOffsets = 1,
  kStringBlob = 2,
  kDevices = 3,
  kUsers = 4,
  kEventDevice = 5,
  kEventSni = 6,
  kEventDay = 7,
  kWireOffsets = 8,
  kWireBlob = 9,
};

/// Serialize `fleet` into snapshot container bytes.
Bytes encode_snapshot(const devicesim::FleetDataset& fleet);

/// encode_snapshot + atomic-ish write to `path` (throws std::runtime_error
/// on I/O failure).
void write_snapshot(const devicesim::FleetDataset& fleet, const std::string& path);

/// Read-side handle over a snapshot. Cheap to open (header + bounds
/// validation only); columns stay in the mapping until asked for. Movable,
/// not copyable; the mapping lives as long as the reader.
class SnapshotReader {
 public:
  /// mmap `path` (falls back to a heap read where mmap is unavailable) and
  /// validate the container. Throws ParseError on any structural problem.
  static SnapshotReader open(const std::string& path);

  /// Take ownership of in-memory container bytes (tests, converters).
  static SnapshotReader from_bytes(Bytes bytes);

  SnapshotReader(SnapshotReader&&) noexcept = default;
  SnapshotReader& operator=(SnapshotReader&&) noexcept = default;

  std::uint64_t event_count() const { return event_count_; }
  std::uint32_t device_count() const { return device_count_; }
  std::uint32_t user_count() const { return user_count_; }
  std::uint32_t string_count() const { return string_count_; }
  std::size_t file_size() const { return data_.size(); }

  /// CRC every section payload against the section table. Throws ParseError
  /// naming the first mismatching section. O(file size).
  void verify_checksums() const;

  /// The string behind a dense id. Throws ParseError on an out-of-range id
  /// or a corrupt offsets table (checked at access, not open).
  std::string_view string_at(std::uint32_t id) const;

  /// Materialize the device table.
  std::vector<devicesim::Device> devices() const;

  /// Materialize the user list.
  std::vector<std::string> users() const;

  /// Materialize events [begin, end). `jobs > 1` shards the range into
  /// fixed chunks written into pre-sized slots, so the result is
  /// byte-identical at every jobs level (jobs <= 1 is the exact sequential
  /// loop). Throws ParseError on corrupt columns.
  std::vector<devicesim::ClientHelloEvent> events(std::uint64_t begin,
                                                  std::uint64_t end,
                                                  int jobs = 1) const;

  /// Materialize the whole fleet (devices + users + all events).
  devicesim::FleetDataset load(int jobs = 1) const;

 private:
  struct Section {
    std::uint32_t crc = 0;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    bool present = false;
  };
  struct DayCheckpoint {
    std::uint64_t byte_offset;  // into the event_day section payload
    std::int64_t day;           // day value of the previous event
  };
  struct Mapping;  // owns the mmap or the heap buffer

  SnapshotReader() = default;
  void parse_container();
  const Section& section(SectionKind kind) const;
  BytesView section_view(SectionKind kind) const;
  void decode_events(std::uint64_t begin, std::uint64_t end,
                     devicesim::ClientHelloEvent* out) const;

  std::shared_ptr<Mapping> mapping_;
  BytesView data_;
  std::uint64_t event_count_ = 0;
  std::uint32_t device_count_ = 0;
  std::uint32_t user_count_ = 0;
  std::uint32_t string_count_ = 0;
  Section sections_[10];  // indexed by SectionKind value
  std::vector<DayCheckpoint> day_checkpoints_;
};

}  // namespace iotls::fleetio

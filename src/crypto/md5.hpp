// MD5 (RFC 1321), implemented from scratch.
//
// MD5 is cryptographically broken and is used here only where the measured
// ecosystem uses it: JA3-style TLS fingerprint digests (§4 of the paper use
// concatenated-field fingerprints; the JA3 convention hashes them with MD5).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace iotls::crypto {

using Md5Digest = std::array<std::uint8_t, 16>;

/// Incremental MD5 context.
class Md5 {
 public:
  Md5();
  void update(BytesView data);
  void update(std::string_view s);
  Md5Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

/// One-shot digest.
Md5Digest md5(BytesView data);
Md5Digest md5(std::string_view s);

/// Lower-case hex of the one-shot digest (JA3 convention).
std::string md5_hex(std::string_view s);

}  // namespace iotls::crypto

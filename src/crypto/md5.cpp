#include "crypto/md5.hpp"

#include <cstring>

#include "util/hex.hpp"

namespace iotls::crypto {

namespace {

constexpr std::uint32_t kInit[4] = {0x67452301u, 0xefcdab89u, 0x98badcfeu,
                                    0x10325476u};

// Per-round shift amounts.
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// Integer parts of abs(sin(i+1)) * 2^32.
constexpr std::uint32_t kSine[64] = {
    0xd76aa478u, 0xe8c7b756u, 0x242070dbu, 0xc1bdceeeu, 0xf57c0fafu,
    0x4787c62au, 0xa8304613u, 0xfd469501u, 0x698098d8u, 0x8b44f7afu,
    0xffff5bb1u, 0x895cd7beu, 0x6b901122u, 0xfd987193u, 0xa679438eu,
    0x49b40821u, 0xf61e2562u, 0xc040b340u, 0x265e5a51u, 0xe9b6c7aau,
    0xd62f105du, 0x02441453u, 0xd8a1e681u, 0xe7d3fbc8u, 0x21e1cde6u,
    0xc33707d6u, 0xf4d50d87u, 0x455a14edu, 0xa9e3e905u, 0xfcefa3f8u,
    0x676f02d9u, 0x8d2a4c8au, 0xfffa3942u, 0x8771f681u, 0x6d9d6122u,
    0xfde5380cu, 0xa4beea44u, 0x4bdecfa9u, 0xf6bb4b60u, 0xbebfbc70u,
    0x289b7ec6u, 0xeaa127fau, 0xd4ef3085u, 0x04881d05u, 0xd9d4d039u,
    0xe6db99e5u, 0x1fa27cf8u, 0xc4ac5665u, 0xf4292244u, 0x432aff97u,
    0xab9423a7u, 0xfc93a039u, 0x655b59c3u, 0x8f0ccc92u, 0xffeff47du,
    0x85845dd1u, 0x6fa87e4fu, 0xfe2ce6e0u, 0xa3014314u, 0x4e0811a1u,
    0xf7537e82u, 0xbd3af235u, 0x2ad7d2bbu, 0xeb86d391u};

constexpr std::uint32_t rotl32(std::uint32_t x, int c) {
  return (x << c) | (x >> (32 - c));
}

}  // namespace

Md5::Md5() { std::memcpy(state_, kInit, sizeof state_); }

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[i * 4]) |
           static_cast<std::uint32_t>(block[i * 4 + 1]) << 8 |
           static_cast<std::uint32_t>(block[i * 4 + 2]) << 16 |
           static_cast<std::uint32_t>(block[i * 4 + 3]) << 24;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    f += a + kSine[i] + m[g];
    a = d;
    d = c;
    c = b;
    b += rotl32(f, kShift[i]);
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(BytesView data) {
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    std::size_t take = std::min(data.size(), std::size_t{64} - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      process_block(buffer_);
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_, data.data() + offset, buffer_len_);
  }
}

void Md5::update(std::string_view s) {
  update(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

Md5Digest Md5::finish() {
  std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80 then zeros to 56 mod 64, then little-endian bit length.
  std::uint8_t pad[72] = {0x80};
  std::size_t pad_len = (buffer_len_ < 56) ? 56 - buffer_len_ : 120 - buffer_len_;
  update(BytesView(pad, pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i)
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  // Avoid double-counting: feed length bytes through process directly.
  total_len_ -= pad_len;  // keep total_len_ meaningless after finish
  std::memcpy(buffer_ + buffer_len_, len_bytes, 8);
  process_block(buffer_);
  buffer_len_ = 0;

  Md5Digest out;
  for (int i = 0; i < 4; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i]);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i] >> 24);
  }
  return out;
}

Md5Digest md5(BytesView data) {
  Md5 ctx;
  ctx.update(data);
  return ctx.finish();
}

Md5Digest md5(std::string_view s) {
  Md5 ctx;
  ctx.update(s);
  return ctx.finish();
}

std::string md5_hex(std::string_view s) {
  Md5Digest d = md5(s);
  return to_hex(BytesView(d.data(), d.size()));
}

}  // namespace iotls::crypto

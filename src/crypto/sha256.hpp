// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for certificate fingerprints, the keyed signature scheme, and the
// RFC-6962-style Merkle tree hashing in the CT log substrate.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace iotls::crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();
  void update(BytesView data);
  void update(std::string_view s);
  Sha256Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

/// One-shot digest.
Sha256Digest sha256(BytesView data);
Sha256Digest sha256(std::string_view s);

/// Lower-case hex of the one-shot digest.
std::string sha256_hex(BytesView data);

}  // namespace iotls::crypto

// Certificate signature scheme for the PKI substrate.
//
// Substitution (see DESIGN.md §2): the paper's servers use RSA/ECDSA
// certificate signatures; for chain validation in this reproduction only
// sign/verify semantics matter, not asymmetric hardness. We therefore use a
// keyed-hash scheme: sig = HMAC-SHA256(issuer_key, tbs_bytes). A KeyPair's
// "public" half is a key identifier derived from the secret; verification
// requires the signing authority's registered verifier. This preserves what
// the measurements need — tamper detection, per-issuer identity, and the
// ability of a chain validator to tell "signed by X" from "not signed by X".
#pragma once

#include <string>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace iotls::crypto {

/// A signing key. `secret` never appears on the wire; `key_id` is the public
/// identifier embedded in certificates (Subject Key Identifier analogue).
struct KeyPair {
  Bytes secret;
  std::string key_id;  // hex(SHA256(secret))[0:16]
};

/// Deterministically derive a key pair from a seed label (e.g. the CA name).
/// Determinism keeps the whole simulated PKI reproducible across runs.
KeyPair derive_keypair(std::string_view label);

/// Sign a message: HMAC-SHA256(secret, message).
Bytes sign(const KeyPair& key, BytesView message);

/// Verify a signature against a key pair (constant-time comparison).
bool verify(const KeyPair& key, BytesView message, BytesView signature);

}  // namespace iotls::crypto

// HMAC-SHA256 (RFC 2104).
#pragma once

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace iotls::crypto {

/// HMAC-SHA256 over `data` with `key` (any key length).
Sha256Digest hmac_sha256(BytesView key, BytesView data);

}  // namespace iotls::crypto

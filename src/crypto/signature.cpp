#include "crypto/signature.hpp"

#include "crypto/hmac.hpp"
#include "util/hex.hpp"

namespace iotls::crypto {

KeyPair derive_keypair(std::string_view label) {
  Sha256 ctx;
  ctx.update(std::string_view("iotls-keypair-v1:"));
  ctx.update(label);
  Sha256Digest secret = ctx.finish();

  KeyPair kp;
  kp.secret.assign(secret.begin(), secret.end());
  Sha256Digest pub = sha256(BytesView(kp.secret.data(), kp.secret.size()));
  kp.key_id = to_hex(BytesView(pub.data(), pub.size())).substr(0, 16);
  return kp;
}

Bytes sign(const KeyPair& key, BytesView message) {
  Sha256Digest d = hmac_sha256(BytesView(key.secret.data(), key.secret.size()), message);
  return Bytes(d.begin(), d.end());
}

bool verify(const KeyPair& key, BytesView message, BytesView signature) {
  Bytes expected = sign(key, message);
  if (expected.size() != signature.size()) return false;
  // Constant-time compare: XOR-accumulate all bytes.
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) acc |= expected[i] ^ signature[i];
  return acc == 0;
}

}  // namespace iotls::crypto

#include "crypto/hmac.hpp"

#include <cstring>

namespace iotls::crypto {

Sha256Digest hmac_sha256(BytesView key, BytesView data) {
  constexpr std::size_t kBlock = 64;
  std::uint8_t k[kBlock] = {};
  if (key.size() > kBlock) {
    Sha256Digest kd = sha256(key);
    std::memcpy(k, kd.data(), kd.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }

  std::uint8_t ipad[kBlock], opad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(BytesView(ipad, kBlock));
  inner.update(data);
  Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(BytesView(opad, kBlock));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

}  // namespace iotls::crypto

// Structured event log: levels, key=value fields, pluggable sinks.
//
// The level gate is a single relaxed atomic load, so a disabled call site
// guarded with `if (logger().enabled(...))` costs ~1 ns. The default sink
// writes one `level=... msg="..." k=v ...` line per record to stderr; tests
// swap in a RingBufferSink to capture records structurally.
//
// The initial level comes from the IOTLS_LOG_LEVEL environment variable
// (trace|debug|info|warn|error|off); the default is warn.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace iotls::obs {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

std::string log_level_name(LogLevel level);
/// Case-insensitive; unknown names yield `fallback`.
LogLevel parse_log_level(const std::string& text, LogLevel fallback);

/// One key=value pair attached to a record. Values are stringified at the
/// call site (which is why call sites should be level-guarded).
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  LogField(std::string k, bool v) : key(std::move(k)), value(v ? "true" : "false") {}
  LogField(std::string k, long long v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, unsigned long long v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, long v) : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, unsigned long v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, int v) : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, unsigned v) : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, double v) : key(std::move(k)), value(std::to_string(v)) {}
};

struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string message;
  std::vector<LogField> fields;
};

/// `level=warn msg="probe failed" sni=a2.tuyaus.com reason=timeout` —
/// values containing spaces/quotes/equals are double-quoted with escaping.
std::string format_record(const LogRecord& record);

class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(const LogRecord& record) = 0;
};

/// Formats each record onto stderr (never stdout: tool output stays clean).
class StderrSink : public LogSink {
 public:
  void write(const LogRecord& record) override;
};

/// Keeps the most recent `capacity` records in memory, for tests and for
/// post-mortem dumps. Thread-safe.
class RingBufferSink : public LogSink {
 public:
  explicit RingBufferSink(std::size_t capacity) : capacity_(capacity) {}

  void write(const LogRecord& record) override;
  std::vector<LogRecord> records() const;
  /// Records evicted because the buffer was full.
  std::uint64_t dropped() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::deque<LogRecord> buffer_;
  std::uint64_t dropped_ = 0;
};

class Logger {
 public:
  /// Starts at the IOTLS_LOG_LEVEL-derived level with a StderrSink.
  Logger();

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  void set_sink(std::shared_ptr<LogSink> sink);
  std::shared_ptr<LogSink> sink() const;

  /// Emit a record if `level` passes the gate. Prefer guarding hot call
  /// sites with enabled() so field stringification is skipped when off.
  void log(LogLevel level, std::string message, std::vector<LogField> fields = {});

  void debug(std::string message, std::vector<LogField> fields = {}) {
    log(LogLevel::kDebug, std::move(message), std::move(fields));
  }
  void info(std::string message, std::vector<LogField> fields = {}) {
    log(LogLevel::kInfo, std::move(message), std::move(fields));
  }
  void warn(std::string message, std::vector<LogField> fields = {}) {
    log(LogLevel::kWarn, std::move(message), std::move(fields));
  }
  void error(std::string message, std::vector<LogField> fields = {}) {
    log(LogLevel::kError, std::move(message), std::move(fields));
  }

 private:
  std::atomic<int> level_;
  mutable std::mutex sink_mu_;
  std::shared_ptr<LogSink> sink_;
};

/// The process-wide logger every subsystem writes to.
Logger& logger();

}  // namespace iotls::obs

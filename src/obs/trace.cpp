#include "obs/trace.hpp"

namespace iotls::obs {

StageTracer::Span& StageTracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    stage_ = std::move(other.stage_);
    start_ = other.start_;
    items_ = other.items_;
    failures_ = other.failures_;
    reasons_ = std::move(other.reasons_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void StageTracer::Span::fail(const std::string& reason, std::uint64_t n) {
  failures_ += n;
  reasons_[reason] += n;
}

void StageTracer::Span::end() {
  if (tracer_ == nullptr) return;
  auto elapsed = std::chrono::steady_clock::now() - start_;
  std::uint64_t wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  tracer_->record(stage_, wall_ns, items_, failures_, reasons_);
  tracer_ = nullptr;
}

void StageTracer::record(const std::string& stage, std::uint64_t wall_ns,
                         std::uint64_t items, std::uint64_t failures,
                         const std::map<std::string, std::uint64_t>& reasons) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stages_.find(stage);
  if (it == stages_.end()) {
    it = stages_.emplace(stage, StageStats{}).first;
    order_.push_back(stage);
  }
  StageStats& stats = it->second;
  stats.calls += 1;
  stats.items += items;
  stats.failures += failures;
  stats.wall_ns += wall_ns;
  for (const auto& [reason, n] : reasons) stats.failure_reasons[reason] += n;
}

std::vector<std::pair<std::string, StageStats>> StageTracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, StageStats>> out;
  out.reserve(order_.size());
  for (const std::string& stage : order_) {
    out.emplace_back(stage, stages_.at(stage));
  }
  return out;
}

void StageTracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  order_.clear();
  stages_.clear();
}

Json StageTracer::to_json_value() const {
  Json out{Json::Object{}};
  for (const auto& [stage, stats] : snapshot()) {
    Json reasons{Json::Object{}};
    for (const auto& [reason, n] : stats.failure_reasons) reasons.set(reason, Json(n));
    Json entry{Json::Object{}};
    entry.set("calls", Json(stats.calls));
    entry.set("items", Json(stats.items));
    entry.set("failures", Json(stats.failures));
    entry.set("wall_ns", Json(stats.wall_ns));
    entry.set("failure_reasons", std::move(reasons));
    out.set(stage, std::move(entry));
  }
  return out;
}

StageTracer& tracer() {
  static StageTracer instance;
  return instance;
}

}  // namespace iotls::obs

#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

namespace iotls::obs {

namespace {

/// Per-thread stack of open span ids. Global across recorders: only one
/// recorder is meaningfully enabled at a time (the process-wide one), and a
/// stray id from another recorder merely yields a missing parent link, not
/// a crash.
thread_local std::vector<std::uint64_t> t_span_stack;

}  // namespace

std::uint32_t TraceRecorder::thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void TraceRecorder::enable() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }
  epoch_ = std::chrono::steady_clock::now();
  next_id_.store(1, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::disable() { enabled_.store(false, std::memory_order_release); }

std::uint64_t TraceRecorder::now_ns() const {
  if (epoch_ == std::chrono::steady_clock::time_point{}) return 0;
  auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

TraceRecorder::OpenSpan TraceRecorder::open_span() {
  OpenSpan span;
  span.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.parent = t_span_stack.empty() ? 0 : t_span_stack.back();
  t_span_stack.push_back(span.id);
  return span;
}

void TraceRecorder::close_span(const OpenSpan& span, TraceEvent ev) {
  // Usually the top of the stack; search from the back to tolerate
  // out-of-order ends (two sibling spans closed in construction order).
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (*it == span.id) {
      t_span_stack.erase(std::next(it).base());
      break;
    }
  }
  ev.id = span.id;
  ev.parent = span.parent;
  ev.tid = thread_ordinal();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.id < b.id;
  });
  return out;
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
}

Json TraceRecorder::chrome_trace_json() const {
  Json::Array trace_events;
  {
    // Process metadata gives Perfetto a human name for the track group.
    Json meta{Json::Object{}};
    meta.set("name", Json("process_name"));
    meta.set("ph", Json("M"));
    meta.set("pid", Json(1));
    meta.set("tid", Json(0));
    Json args{Json::Object{}};
    args.set("name", Json("iotls"));
    meta.set("args", std::move(args));
    trace_events.push_back(std::move(meta));
  }
  for (const TraceEvent& ev : events()) {
    Json entry{Json::Object{}};
    entry.set("name", Json(ev.name));
    entry.set("cat", Json("iotls"));
    entry.set("ph", Json("X"));
    entry.set("pid", Json(1));
    entry.set("tid", Json(static_cast<std::int64_t>(ev.tid)));
    entry.set("ts", Json(static_cast<std::int64_t>(ev.start_ns / 1000)));
    entry.set("dur", Json(static_cast<std::int64_t>(ev.dur_ns / 1000)));
    Json args{Json::Object{}};
    args.set("span_id", Json(ev.id));
    args.set("parent", Json(ev.parent));
    if (ev.items != 0) args.set("items", Json(ev.items));
    if (ev.failures != 0) args.set("failures", Json(ev.failures));
    if (!ev.detail.empty()) args.set("detail", Json(ev.detail));
    entry.set("args", std::move(args));
    trace_events.push_back(std::move(entry));
  }
  Json out{Json::Object{}};
  out.set("displayTimeUnit", Json("ms"));
  out.set("traceEvents", Json(std::move(trace_events)));
  return out;
}

bool TraceRecorder::write_chrome_trace(const std::string& path,
                                       std::string* error) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  f << chrome_trace_json().dump() << '\n';
  f.flush();
  if (!f) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

void TraceRecorder::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

TraceRecorder& recorder() {
  static TraceRecorder instance;
  return instance;
}

void TraceSpan::end() {
  if (!active_) return;
  active_ = false;
  TraceEvent ev;
  ev.name = name_;
  ev.detail = std::move(detail_);
  ev.start_ns = start_;
  std::uint64_t now = obs::recorder().now_ns();
  ev.dur_ns = now >= start_ ? now - start_ : 0;
  obs::recorder().close_span(open_, std::move(ev));
}

void StageTracer::Span::maybe_open_trace() {
  if (!obs::recorder().enabled()) return;
  trace_active_ = true;
  trace_start_ns_ = obs::recorder().now_ns();
  trace_open_ = obs::recorder().open_span();
}

StageTracer::Span& StageTracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    stage_ = std::move(other.stage_);
    start_ = other.start_;
    items_ = other.items_;
    failures_ = other.failures_;
    reasons_ = std::move(other.reasons_);
    trace_active_ = other.trace_active_;
    trace_start_ns_ = other.trace_start_ns_;
    trace_open_ = other.trace_open_;
    other.tracer_ = nullptr;
    other.trace_active_ = false;
  }
  return *this;
}

void StageTracer::Span::fail(const std::string& reason, std::uint64_t n) {
  failures_ += n;
  reasons_[reason] += n;
}

void StageTracer::Span::end() {
  if (trace_active_) {
    trace_active_ = false;
    TraceEvent ev;
    ev.name = stage_;
    ev.start_ns = trace_start_ns_;
    std::uint64_t now = obs::recorder().now_ns();
    ev.dur_ns = now >= trace_start_ns_ ? now - trace_start_ns_ : 0;
    ev.items = items_;
    ev.failures = failures_;
    obs::recorder().close_span(trace_open_, std::move(ev));
  }
  if (tracer_ == nullptr) return;
  auto elapsed = std::chrono::steady_clock::now() - start_;
  std::uint64_t wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  tracer_->record(stage_, wall_ns, items_, failures_, reasons_);
  tracer_ = nullptr;
}

void StageTracer::record(const std::string& stage, std::uint64_t wall_ns,
                         std::uint64_t items, std::uint64_t failures,
                         const std::map<std::string, std::uint64_t>& reasons) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stages_.find(stage);
  if (it == stages_.end()) {
    it = stages_.emplace(stage, StageStats{}).first;
    order_.push_back(stage);
  }
  StageStats& stats = it->second;
  stats.calls += 1;
  stats.items += items;
  stats.failures += failures;
  stats.wall_ns += wall_ns;
  for (const auto& [reason, n] : reasons) stats.failure_reasons[reason] += n;
}

std::vector<std::pair<std::string, StageStats>> StageTracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, StageStats>> out;
  out.reserve(order_.size());
  for (const std::string& stage : order_) {
    out.emplace_back(stage, stages_.at(stage));
  }
  return out;
}

void StageTracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  order_.clear();
  stages_.clear();
}

Json StageTracer::to_json_value() const {
  Json out{Json::Object{}};
  for (const auto& [stage, stats] : snapshot()) {
    Json reasons{Json::Object{}};
    for (const auto& [reason, n] : stats.failure_reasons) reasons.set(reason, Json(n));
    Json entry{Json::Object{}};
    entry.set("calls", Json(stats.calls));
    entry.set("items", Json(stats.items));
    entry.set("failures", Json(stats.failures));
    entry.set("wall_ns", Json(stats.wall_ns));
    entry.set("failure_reasons", std::move(reasons));
    out.set(stage, std::move(entry));
  }
  return out;
}

StageTracer& tracer() {
  static StageTracer instance;
  return instance;
}

}  // namespace iotls::obs

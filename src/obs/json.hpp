// Minimal JSON value, serializer and parser for metric export.
//
// The observability layer exports its state as JSON (`--stats=json`); the
// parser exists so that export is round-trippable and testable without an
// external dependency. Supports the full JSON grammar except `\u` escapes
// beyond the Basic Latin range (exported names never need them). Strings
// are treated as byte sequences: the serializer escapes every byte outside
// printable ASCII as `\u00xx` (fault injection can garble arbitrary bytes
// into error strings), so dump() is always pure-ASCII valid JSON and
// parse_json(dump()) returns the exact input bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace iotls::obs {

/// A parsed/buildable JSON document node. Object member order is preserved
/// (exports are stable and diffable).
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(std::int64_t n) : value_(n) {}
  Json(std::uint64_t n) : value_(static_cast<std::int64_t>(n)) {}
  Json(int n) : value_(static_cast<std::int64_t>(n)) {}
  Json(double d) : value_(d) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Append a member to an object node (the node must hold an Object).
  void set(std::string key, Json value);

  /// Serialize compactly (no whitespace). Guaranteed to re-parse.
  std::string dump() const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;
};

/// Parse a JSON document. Throws ParseError on malformed input or trailing
/// garbage. Numbers without fraction/exponent that fit an int64 parse as
/// integers; everything else parses as double.
Json parse_json(const std::string& text);

}  // namespace iotls::obs

#include "obs/prometheus.hpp"

#include <cctype>
#include <cstdio>

namespace iotls::obs {

namespace {

/// `# HELP` text must escape backslash and newline per the exposition spec.
std::string escape_help(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

void append_meta(std::string& out, const std::string& prom_name,
                 const char* type, const std::string& dotted_name) {
  out += "# HELP " + prom_name + " iotls " + type + " " +
         escape_help(dotted_name) + "\n";
  out += "# TYPE " + prom_name + " ";
  out += type;
  out += "\n";
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (i == 0 && !(alpha || c == '_' || c == ':')) return false;
    if (!(alpha || digit || c == '_' || c == ':')) return false;
  }
  return true;
}

/// Integer or decimal value token, optionally signed / exponent-bearing;
/// the spec also allows +Inf/-Inf/NaN.
bool valid_value(const std::string& s) {
  if (s == "+Inf" || s == "-Inf" || s == "NaN") return true;
  std::size_t i = 0;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
  std::size_t digits = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i, ++digits;
  if (i < s.size() && s[i] == '.') {
    ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i, ++digits;
  }
  if (digits == 0) return false;
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    std::size_t exp_digits = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i, ++exp_digits;
    if (exp_digits == 0) return false;
  }
  return i == s.size();
}

/// `{key="value",...}` with spec escaping inside the quotes.
bool valid_labels(const std::string& s) {
  // s includes the braces.
  if (s.size() < 2 || s.front() != '{' || s.back() != '}') return false;
  std::size_t i = 1;
  const std::size_t end = s.size() - 1;
  if (i == end) return true;  // {} — empty label set
  while (true) {
    std::size_t key_start = i;
    while (i < end && (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_')) ++i;
    if (i == key_start) return false;
    if (i >= end || s[i] != '=') return false;
    ++i;
    if (i >= end || s[i] != '"') return false;
    ++i;
    while (i < end && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= end) return false;
      }
      ++i;
    }
    if (i >= end) return false;  // unterminated value
    ++i;                         // closing quote
    if (i == end) return true;
    if (s[i] != ',') return false;
    ++i;
  }
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string canonical = sanitize_metric_name(name);
  for (char& c : canonical) {
    if (c == '.') c = '_';
  }
  return canonical;
}

std::string prometheus_text(const Registry& registry) {
  std::string out;
  out.reserve(4096);
  // Counters keep their registry spelling (no `_total` suffixing): names
  // like `net.probe.total` already carry their semantic suffix, and the
  // scrape-vs-`--stats=json` parity check depends on a mechanical mapping.
  for (const auto& [name, value] : registry.counter_values()) {
    std::string prom = prometheus_name(name);
    append_meta(out, prom, "counter", name);
    out += prom;
    out += ' ';
    append_u64(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : registry.gauge_values()) {
    std::string prom = prometheus_name(name);
    append_meta(out, prom, "gauge", name);
    out += prom;
    out += ' ';
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    out += buf;
    out += '\n';
  }
  for (const auto& [name, hist] : registry.histogram_entries()) {
    std::string prom = prometheus_name(name);
    append_meta(out, prom, "histogram", name);
    const auto& bounds = hist->bounds();
    auto counts = hist->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out += prom;
      out += "_bucket{le=\"";
      append_u64(out, bounds[i]);
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    cumulative += counts.back();
    out += prom + "_bucket{le=\"+Inf\"} ";
    append_u64(out, cumulative);
    out += '\n';
    out += prom + "_sum ";
    append_u64(out, hist->sum());
    out += '\n';
    out += prom + "_count ";
    append_u64(out, hist->count());
    out += '\n';
  }
  return out;
}

bool validate_exposition(const std::string& text, std::string* error) {
  std::size_t pos = 0;
  auto fail = [&](const std::string& line) {
    if (error != nullptr) *error = line;
    return false;
  };
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) return fail("missing trailing newline");
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // `# HELP name text` or `# TYPE name counter|gauge|histogram`.
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
        return fail(line);
      }
      std::string rest = line.substr(7);
      std::size_t sp = rest.find(' ');
      std::string name = sp == std::string::npos ? rest : rest.substr(0, sp);
      if (!valid_metric_name(name)) return fail(line);
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string type = sp == std::string::npos ? "" : rest.substr(sp + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail(line);
        }
      }
      continue;
    }
    // Sample line: name[{labels}] value
    std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) return fail(line);
    if (!valid_metric_name(line.substr(0, name_end))) return fail(line);
    std::size_t value_start;
    if (line[name_end] == '{') {
      std::size_t close = line.find('}', name_end);
      if (close == std::string::npos || close + 1 >= line.size() ||
          line[close + 1] != ' ') {
        return fail(line);
      }
      if (!valid_labels(line.substr(name_end, close - name_end + 1))) {
        return fail(line);
      }
      value_start = close + 2;
    } else {
      value_start = name_end + 1;
    }
    if (!valid_value(line.substr(value_start))) return fail(line);
  }
  return true;
}

}  // namespace iotls::obs

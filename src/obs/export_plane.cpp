#include "obs/export_plane.hpp"

#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"

namespace iotls::obs {

ExportPlane::ExportPlane() = default;

ExportPlane::~ExportPlane() { stop(); }

bool ExportPlane::start(std::uint16_t port, std::string* error) {
  server_.handle("/metrics", [](const HttpRequest&) {
    // A scrape IS the sampling timer for the process-level gauges.
    sample_process_gauges();
    HttpResponse resp = HttpResponse::text(200, prometheus_text(metrics()));
    resp.content_type = prometheus_content_type();
    return resp;
  });
  server_.handle("/stats", [](const HttpRequest&) {
    // Byte-compatible with what `--stats=json` prints (report::stats_json).
    Json out{Json::Object{}};
    out.set("metrics", metrics().to_json_value());
    out.set("stages", tracer().to_json_value());
    return HttpResponse::json(200, out.dump());
  });
  auto health_route = [](HealthKind kind) {
    return [kind](const HttpRequest&) {
      HealthRegistry::Report report = health().run(kind);
      return HttpResponse::json(report.ok ? 200 : 503,
                                health().to_json_value(kind).dump());
    };
  };
  server_.handle("/healthz", health_route(HealthKind::kLiveness));
  server_.handle("/readyz", health_route(HealthKind::kReadiness));
  server_.handle("/trace", [](const HttpRequest&) {
    return HttpResponse::json(200, recorder().chrome_trace_json().dump());
  });
  server_.handle("/quitquitquit", [this](const HttpRequest&) {
    request_stop();
    return HttpResponse::text(200, "bye\n");
  });

  if (!server_.start(port, error)) return false;
  liveness_ = std::make_unique<ScopedHealthCheck>(
      "obs.http", HealthKind::kLiveness, [this] {
        return server_.running()
                   ? HealthStatus::healthy(
                         "port=" + std::to_string(server_.port()) + " served=" +
                         std::to_string(server_.requests_served()))
                   : HealthStatus::unhealthy("server not running");
      });
  return true;
}

bool ExportPlane::wait_for_shutdown(std::uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (timeout_ms == 0) {
    cv_.wait(lock, [&] { return stop_requested_; });
    return true;
  }
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return stop_requested_; });
}

void ExportPlane::request_stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
}

void ExportPlane::stop() {
  request_stop();
  liveness_.reset();
  server_.stop();
}

}  // namespace iotls::obs

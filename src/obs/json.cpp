#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace iotls::obs {

std::int64_t Json::as_int() const {
  if (is_double()) return static_cast<std::int64_t>(std::get<double>(value_));
  return std::get<std::int64_t>(value_);
}

double Json::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  return std::get<double>(value_);
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(std::string key, Json value) {
  std::get<Object>(value_).emplace_back(std::move(key), std::move(value));
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  // Strings here can carry raw wire bytes (a garbled fault flips arbitrary
  // bytes into error_detail, which flows into --stats=json). Emit pure
  // ASCII: bytes outside 0x20..0x7e become \u00xx, so the dump is valid
  // JSON regardless of payload and parse_string round-trips it byte-exact.
  out += '"';
  for (char c : s) {
    const unsigned char b = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (b < 0x20 || b >= 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(b));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  if (is_null()) {
    out = "null";
  } else if (is_bool()) {
    out = as_bool() ? "true" : "false";
  } else if (is_int()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, as_int());
    out = buf;
  } else if (is_double()) {
    double d = as_double();
    if (!std::isfinite(d)) {
      out = "null";  // JSON has no Inf/NaN
    } else {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out = buf;
    }
  } else if (is_string()) {
    dump_string(as_string(), out);
  } else if (is_array()) {
    out = "[";
    const Array& a = as_array();
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i > 0) out += ',';
      out += a[i].dump();
    }
    out += ']';
  } else {
    out = "{";
    const Object& o = as_object();
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i > 0) out += ',';
      dump_string(o[i].first, out);
      out += ':';
      out += o[i].second.dump();
    }
    out += '}';
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json(nullptr);
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          if (code > 0xff) fail("\\u escape beyond latin-1 unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      digits = true;
    }
    if (!digits) fail("bad number");
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t v = 0;
      auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec == std::errc() && ptr == token.data() + token.size()) return Json(v);
    }
    return Json(std::strtod(token.c_str(), nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json parse_json(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace iotls::obs

// Dependency-free blocking HTTP/1.1 server for the live export plane.
//
// Scope: exactly what a metrics scraper and a health prober need — GET only,
// over loopback, one request per
// connection (`Connection: close` on every response), bounded everything:
//   * one acceptor thread polling the listen socket;
//   * a bounded handler pool (exec::WorkQueue) running the route handlers,
//     so a scrape storm backs up into fast 503s instead of threads;
//   * an 8 KiB request cap and a receive timeout per connection.
//
// It deliberately is NOT a general web server: no keep-alive, no chunked
// bodies, no TLS (the pipeline *simulates* TLS servers; the export plane
// serving real TLS would be a layering joke). Binds 127.0.0.1 only.
//
// Routes are exact-path matches registered before start(). Handlers run on
// pool threads and must be thread-safe (the standard routes only read
// atomics under the registry mutexes).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

namespace iotls::exec {
class WorkQueue;
}

namespace iotls::obs {

struct HttpRequest {
  std::string method;  // "GET"
  std::string target;  // path only; the query string (if any) is stripped
  std::string query;   // raw query string without the '?'
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse text(int status, std::string body);
  static HttpResponse json(int status, std::string body);
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer();
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register `handler` for exact path `path` ("/metrics"). Must be called
  /// before start().
  void handle(const std::string& path, Handler handler);

  /// Bind 127.0.0.1:`port` (0 = kernel-assigned ephemeral port), start the
  /// acceptor thread and the handler pool. False + `error` on bind/listen
  /// failure. Call at most once.
  bool start(std::uint16_t port, std::string* error = nullptr);

  /// The bound port (valid after start() succeeds).
  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Stop accepting, drain in-flight handlers, join all threads. Idempotent.
  void stop();

  /// Requests fully served since start (any status).
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void acceptor_loop();
  void serve_connection(int fd);
  static std::string read_request(int fd);

  std::map<std::string, Handler> routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread acceptor_;
  std::unique_ptr<exec::WorkQueue> pool_;
};

/// Minimal blocking HTTP GET against 127.0.0.1:`port` for tests and tools:
/// returns the status code and fills `body` (headers stripped). Returns -1
/// on connect/transport failure.
int http_get(std::uint16_t port, const std::string& target, std::string* body);

namespace detail {

/// Write all of `data` to `fd`, retrying short writes and EINTR (a signal
/// landing mid-scrape must not truncate a response). Returns false when the
/// peer is gone or the socket errors out.
bool send_all(int fd, const std::string& data);

/// Read an HTTP request from `fd` until the header terminator, EOF, or
/// `max_bytes`, retrying EINTR (a signal must not drop the request).
std::string read_http_request(int fd, std::size_t max_bytes);

}  // namespace detail

}  // namespace iotls::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace iotls::obs {

std::size_t Counter::stripe_index() {
  // Hand each thread a stable ordinal on first use; threads then map
  // round-robin onto stripes. Survey pools are small (<= ~16 workers), so
  // collisions are rare and harmless — a shared stripe is still correct,
  // just marginally more contended.
  static std::atomic<std::size_t> next_ordinal{0};
  thread_local const std::size_t ordinal =
      next_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal % kStripes;
}

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) throw std::invalid_argument("histogram needs >= 1 bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("histogram bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(std::uint64_t sample) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

std::uint64_t Histogram::quantile_bound(double q) const {
  std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  auto counts = bucket_counts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= target) {
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.back();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

const std::vector<std::uint64_t>& latency_buckets_ns() {
  static const std::vector<std::uint64_t> kBuckets = {
      1'000,       2'000,       5'000,        10'000,      20'000,
      50'000,      100'000,     200'000,      500'000,     1'000'000,
      2'000'000,   5'000'000,   10'000'000,   20'000'000,  50'000'000,
      100'000'000, 200'000'000, 500'000'000,  1'000'000'000};
  return kBuckets;
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    unsigned char u = static_cast<unsigned char>(c);
    if ((u >= 'a' && u <= 'z') || (u >= '0' && u <= '9') || u == '_' || u == '.') {
      out.push_back(c);
    } else if (u >= 'A' && u <= 'Z') {
      out.push_back(static_cast<char>(u - 'A' + 'a'));
    } else {
      out.push_back('_');
    }
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[sanitize_metric_name(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[sanitize_metric_name(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<std::uint64_t>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[sanitize_metric_name(name)];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_values() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> Registry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histogram_entries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::string Registry::to_text() const {
  std::string out;
  char buf[160];
  for (const auto& [name, value] : counter_values()) {
    std::snprintf(buf, sizeof(buf), "counter    %-44s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, value] : gauge_values()) {
    std::snprintf(buf, sizeof(buf), "gauge      %-44s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += buf;
  }
  for (const auto& [name, hist] : histogram_entries()) {
    std::uint64_t n = hist->count();
    std::snprintf(buf, sizeof(buf),
                  "histogram  %-44s count=%llu sum=%llu p50<=%llu p99<=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(hist->sum()),
                  static_cast<unsigned long long>(hist->quantile_bound(0.5)),
                  static_cast<unsigned long long>(hist->quantile_bound(0.99)));
    out += buf;
  }
  return out;
}

Json Registry::to_json_value() const {
  Json counters{Json::Object{}};
  for (const auto& [name, value] : counter_values()) counters.set(name, Json(value));
  Json gauges{Json::Object{}};
  for (const auto& [name, value] : gauge_values()) gauges.set(name, Json(value));
  Json histograms{Json::Object{}};
  for (const auto& [name, hist] : histogram_entries()) {
    Json::Array buckets;
    auto counts = hist->bucket_counts();
    const auto& bounds = hist->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      Json bucket{Json::Object{}};
      // The overflow bucket has no finite upper bound: le=null.
      bucket.set("le", i < bounds.size() ? Json(bounds[i]) : Json(nullptr));
      bucket.set("count", Json(counts[i]));
      buckets.push_back(std::move(bucket));
    }
    Json h{Json::Object{}};
    h.set("count", Json(hist->count()));
    h.set("sum", Json(hist->sum()));
    h.set("buckets", Json(std::move(buckets)));
    histograms.set(name, std::move(h));
  }
  Json out{Json::Object{}};
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

Registry& metrics() {
  static Registry registry;
  return registry;
}

}  // namespace iotls::obs

#include "obs/resource.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace iotls::obs {

namespace {

/// "VmRSS:\t  123456 kB" -> bytes. Returns 0 on any shape mismatch.
std::uint64_t parse_kb_line(const std::string& line) {
  std::size_t colon = line.find(':');
  if (colon == std::string::npos) return 0;
  std::istringstream rest(line.substr(colon + 1));
  std::uint64_t value = 0;
  std::string unit;
  rest >> value >> unit;
  if (unit == "kB") return value * 1024;
  return value;  // "Threads:" has no unit
}

}  // namespace

ProcMemory parse_proc_status(const std::string& text) {
  ProcMemory out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.rfind("VmRSS:", 0) == 0) out.rss_bytes = parse_kb_line(line);
    else if (line.rfind("VmHWM:", 0) == 0) out.rss_peak_bytes = parse_kb_line(line);
    else if (line.rfind("Threads:", 0) == 0) out.threads = parse_kb_line(line);
  }
  return out;
}

ProcMemory read_proc_memory() {
  std::ifstream f("/proc/self/status");
  if (!f) return ProcMemory{};
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_proc_status(buf.str());
}

void sample_process_gauges(Registry& registry) {
  ProcMemory mem = read_proc_memory();
  registry.gauge("process.rss_bytes").set(static_cast<std::int64_t>(mem.rss_bytes));
  registry.gauge("process.rss_peak_bytes")
      .set(static_cast<std::int64_t>(mem.rss_peak_bytes));
  registry.gauge("process.threads").set(static_cast<std::int64_t>(mem.threads));
}

ArenaAccount::ArenaAccount(const std::string& name, Registry& registry)
    : bytes_gauge_(&registry.gauge("mem.arena." + name + ".bytes")),
      peak_gauge_(&registry.gauge("mem.arena." + name + ".peak_bytes")),
      allocations_gauge_(&registry.gauge("mem.arena." + name + ".allocations")) {}

void ArenaAccount::allocate(std::uint64_t bytes) {
  std::uint64_t now = bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  allocations_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  bytes_gauge_->set(static_cast<std::int64_t>(now));
  peak_gauge_->set(static_cast<std::int64_t>(peak_.load(std::memory_order_relaxed)));
  allocations_gauge_->set(
      static_cast<std::int64_t>(allocations_.load(std::memory_order_relaxed)));
}

void ArenaAccount::release(std::uint64_t bytes) {
  std::uint64_t before = bytes_.load(std::memory_order_relaxed);
  // Clamp at zero: a release racing a sloppy caller must not wrap the gauge
  // to 2^64 (accounting is advisory, never load-bearing).
  std::uint64_t after;
  do {
    after = before >= bytes ? before - bytes : 0;
  } while (!bytes_.compare_exchange_weak(before, after, std::memory_order_relaxed));
  bytes_gauge_->set(static_cast<std::int64_t>(after));
}

ArenaAccount& interner_arena() {
  static ArenaAccount* account = new ArenaAccount("interner");
  return *account;
}

ArenaAccount& validation_cache_arena() {
  static ArenaAccount* account = new ArenaAccount("validation_cache");
  return *account;
}

ArenaAccount& http_arena() {
  static ArenaAccount* account = new ArenaAccount("http");
  return *account;
}

ArenaAccount& snapshot_arena() {
  static ArenaAccount* account = new ArenaAccount("snapshot");
  return *account;
}

ArenaAccount& parse_arena() {
  static ArenaAccount* account = new ArenaAccount("parse");
  return *account;
}

}  // namespace iotls::obs

#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "exec/queue.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"

namespace iotls::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8 * 1024;
constexpr int kRecvTimeoutSec = 2;
constexpr int kHandlerThreads = 2;
constexpr std::size_t kPendingConnections = 32;

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void send_response(int fd, const HttpResponse& resp) {
  char head[256];
  std::snprintf(head, sizeof head,
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                resp.status, status_reason(resp.status),
                resp.content_type.c_str(), resp.body.size());
  std::string wire;
  wire.reserve(std::strlen(head) + resp.body.size());
  wire += head;
  wire += resp.body;
  http_arena().allocate(wire.size());
  detail::send_all(fd, wire);
  http_arena().release(wire.size());
}

}  // namespace

namespace detail {

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal mid-write: not peer loss
    if (n <= 0) return false;  // peer gone; response delivery is best-effort
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_http_request(int fd, std::size_t max_bytes) {
  std::string data;
  char buf[2048];
  while (data.size() < max_bytes) {
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;  // signal mid-read: keep the request
    if (n <= 0) break;  // EOF, timeout or error
    data.append(buf, static_cast<std::size_t>(n));
    if (data.find("\r\n\r\n") != std::string::npos) break;
  }
  return data;
}

}  // namespace detail

HttpResponse HttpResponse::text(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  return resp;
}

HttpResponse HttpResponse::json(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

HttpServer::HttpServer() = default;

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(const std::string& path, Handler handler) {
  routes_[path] = std::move(handler);
}

bool HttpServer::start(std::uint16_t port, std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, static_cast<int>(kPendingConnections)) != 0) {
    return fail("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  pool_ = std::make_unique<exec::WorkQueue>("http", kHandlerThreads,
                                            kPendingConnections);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { acceptor_loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  if (pool_) pool_->stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void HttpServer::acceptor_loop() {
  static Counter& accepted = metrics().counter("obs.http.connections");
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, 100 /* ms: bounded stop() latency */);
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    accepted.inc();
    timeval tv{};
    tv.tv_sec = kRecvTimeoutSec;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    if (!pool_->try_submit([this, fd] { serve_connection(fd); })) {
      // Handler pool saturated: shed load with a direct 503 on the
      // acceptor thread (cheaper than the request it replaces).
      send_response(fd, HttpResponse::text(503, "handler pool saturated\n"));
      ::close(fd);
      metrics().counter("obs.http.shed").inc();
    }
  }
}

std::string HttpServer::read_request(int fd) {
  return detail::read_http_request(fd, kMaxRequestBytes);
}

void HttpServer::serve_connection(int fd) {
  static Histogram& handle_ns = metrics().histogram("obs.http.handle_ns");
  ScopedTimer timer(handle_ns);

  std::string raw = read_request(fd);
  HttpResponse resp;
  std::size_t line_end = raw.find("\r\n");
  std::string request_line =
      line_end == std::string::npos ? raw : raw.substr(0, line_end);
  // "GET /path?query HTTP/1.1"
  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp = HttpResponse::text(400, "malformed request line\n");
  } else {
    HttpRequest req;
    req.method = request_line.substr(0, sp1);
    req.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::size_t q = req.target.find('?');
    if (q != std::string::npos) {
      req.query = req.target.substr(q + 1);
      req.target.resize(q);
    }
    if (req.method != "GET") {
      resp = HttpResponse::text(405, "only GET supported\n");
    } else {
      auto it = routes_.find(req.target);
      if (it == routes_.end()) {
        resp = HttpResponse::text(404, "no route for " + req.target + "\n");
      } else {
        resp = it->second(req);
      }
    }
  }
  // Account before writing: once the client has read the response, the
  // counters already reflect its request.
  served_.fetch_add(1, std::memory_order_relaxed);
  metrics().counter("obs.http.requests").inc();
  if (resp.status >= 400) metrics().counter("obs.http.errors").inc();
  send_response(fd, resp);
  ::close(fd);
}

int http_get(std::uint16_t port, const std::string& target, std::string* body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::string request = "GET " + target +
                        " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  detail::send_all(fd, request);
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.1 200 OK\r\n...\r\n\r\nbody"
  if (raw.rfind("HTTP/1.", 0) != 0) return -1;
  std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) return -1;
  int status = std::atoi(raw.c_str() + sp + 1);
  if (body != nullptr) {
    std::size_t sep = raw.find("\r\n\r\n");
    *body = sep == std::string::npos ? std::string() : raw.substr(sep + 4);
  }
  return status;
}

}  // namespace iotls::obs

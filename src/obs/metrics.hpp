// Lock-cheap metrics: named counters, gauges and fixed-bucket histograms.
//
// Design: instrument objects are allocated once per name and never move, so
// hot paths hold a `Counter&` (typically via a function-local static) and
// pay a single relaxed atomic add per event — low single-digit ns, safe to
// leave enabled in the measurement pipeline. Registry lookups take a mutex
// and are meant for cold paths (registration, export).
//
// Naming convention: dot-separated `<subsystem>.<operation>.<detail>`,
// lower_snake_case segments, with unit suffixes on histograms (`_ns`,
// `_days`). Examples: `net.probe.reachable.new_york`,
// `net.probe.handshake_ns`, `x509.validate.untrusted_root`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace iotls::obs {

/// Monotonic event counter. Increment is one relaxed atomic add into a
/// per-thread stripe: counters sit on the survey hot path, and with
/// `--jobs N` workers hammering the same cache line a single atomic
/// becomes a contention point. Eight cache-line-padded stripes, indexed
/// by a cheap thread-local ordinal, keep increments core-local; value()
/// sums the stripes (exact for quiescent reads — reporting happens after
/// the pool joins).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    stripes_[stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Stripe& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Stripe& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 8;
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t stripe_index();
  Stripe stripes_[kStripes];
};

/// Point-in-time signed value (queue depths, cache sizes).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative integer samples (typically
/// nanoseconds). Bucket i counts samples <= bounds[i]; one implicit
/// overflow bucket catches the rest. Observe is a branch-free-ish binary
/// search plus two relaxed atomic adds.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<std::uint64_t> upper_bounds);

  void observe(std::uint64_t sample);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// Per-bucket counts; last entry is the overflow (+inf) bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  /// Upper bound of the bucket holding quantile `q` in [0,1]; the largest
  /// finite bound when `q` lands in the overflow bucket; 0 when empty.
  std::uint64_t quantile_bound(double q) const;
  void reset();

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Default latency buckets: 1us .. 1s in a 1-2-5 series, in nanoseconds.
const std::vector<std::uint64_t>& latency_buckets_ns();

/// Canonical metric-name mangling, applied by the Registry at registration
/// so every export surface (JSON, Prometheus, text tables) agrees on one
/// spelling. The rule: bytes outside `[a-zA-Z0-9_.]` become `_` (so a
/// vantage called "new-york city" yields `net.probe.reachable.new_york_city`),
/// uppercase folds to lowercase, an empty name or a leading digit gains a
/// `_` prefix. Names already following the `<subsystem>.<operation>.<detail>`
/// convention pass through byte-identical.
std::string sanitize_metric_name(const std::string& name);

/// Named-instrument registry. Instruments are created on first use and
/// live (at a stable address) for the registry's lifetime; `reset()` zeroes
/// values but never invalidates references. Names are canonicalized through
/// sanitize_metric_name(), so two spellings that mangle to the same
/// canonical name share one instrument.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used only on first creation of `name`.
  Histogram& histogram(const std::string& name,
                       const std::vector<std::uint64_t>& bounds = latency_buckets_ns());

  /// Zero every instrument, keeping all registrations (and references) alive.
  void reset();

  /// Sorted (name, value) snapshots for reporting.
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
  std::vector<std::pair<std::string, std::int64_t>> gauge_values() const;
  std::vector<std::pair<std::string, const Histogram*>> histogram_entries() const;

  /// Human-readable dump, one instrument per line.
  std::string to_text() const;
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,buckets}}}
  Json to_json_value() const;
  std::string to_json() const { return to_json_value().dump(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every subsystem instruments into.
Registry& metrics();

/// RAII wall-clock timer recording elapsed nanoseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : hist_(&h), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace iotls::obs

// Component health checks backing the export plane's `/healthz` (liveness)
// and `/readyz` (readiness) endpoints.
//
// Semantics follow the Kubernetes convention the k3s-style node agents use:
//  * liveness — "is this component structurally alive?" A failing liveness
//    probe means the process is wedged and should be restarted.
//  * readiness — "should this process receive work right now?" A failing
//    readiness probe is a normal transient state (circuit breakers mostly
//    open, warm-up, draining) and clears on its own.
//
// Components register a named callback (prober, thread pool, validation
// cache, HTTP server itself); the registry runs every callback of a kind
// under its mutex and reports per-check verdicts in name order, so the
// endpoint bodies are deterministic for a given component state. Callbacks
// must therefore be fast and non-blocking — read a couple of atomics,
// format a detail string.
//
// Registration is RAII-friendly: re-registering a name replaces the
// previous callback, unregister removes it, and ScopedHealthCheck ties a
// registration to a component's lifetime (the thread pool and validation
// cache use it so `/healthz` reflects exactly the components that exist
// right now).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace iotls::obs {

enum class HealthKind { kLiveness, kReadiness };

struct HealthStatus {
  bool ok = true;
  std::string detail;  // free-form, e.g. "workers=8 queue_depth=0"

  static HealthStatus healthy(std::string detail = "ok") {
    return HealthStatus{true, std::move(detail)};
  }
  static HealthStatus unhealthy(std::string detail) {
    return HealthStatus{false, std::move(detail)};
  }
};

using HealthCheck = std::function<HealthStatus()>;

class HealthRegistry {
 public:
  struct CheckResult {
    std::string name;
    HealthStatus status;
  };
  struct Report {
    bool ok = true;                   // conjunction of every check
    std::vector<CheckResult> checks;  // name-sorted
  };

  /// Register (or replace) `name` for `kind`. Names follow the metric
  /// convention (`exec.pool`, `x509.validation_cache`) and are mangled
  /// through sanitize_metric_name the same way.
  void register_check(const std::string& name, HealthKind kind, HealthCheck fn);
  void unregister(const std::string& name, HealthKind kind);

  /// Run every check of `kind`. An empty registry is healthy (a process
  /// with nothing registered is trivially alive).
  Report run(HealthKind kind) const;

  /// {"ok":bool,"checks":{"<name>":{"ok":bool,"detail":"..."}}}
  Json to_json_value(HealthKind kind) const;

  std::size_t size(HealthKind kind) const;

 private:
  mutable std::mutex mu_;
  // Sorted by name (std::map-like via sorted vector kept simple: std::map).
  std::vector<std::pair<std::string, HealthCheck>> liveness_;
  std::vector<std::pair<std::string, HealthCheck>> readiness_;

  std::vector<std::pair<std::string, HealthCheck>>& slot(HealthKind kind) {
    return kind == HealthKind::kLiveness ? liveness_ : readiness_;
  }
  const std::vector<std::pair<std::string, HealthCheck>>& slot(HealthKind kind) const {
    return kind == HealthKind::kLiveness ? liveness_ : readiness_;
  }
};

/// The process-wide health registry the export plane serves from.
HealthRegistry& health();

/// RAII registration: registers in the constructor, unregisters in the
/// destructor. Components hold one as a member so their check lives
/// exactly as long as they do.
class ScopedHealthCheck {
 public:
  ScopedHealthCheck(std::string name, HealthKind kind, HealthCheck fn);
  ~ScopedHealthCheck();

  ScopedHealthCheck(const ScopedHealthCheck&) = delete;
  ScopedHealthCheck& operator=(const ScopedHealthCheck&) = delete;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  HealthKind kind_;
};

}  // namespace iotls::obs

// Process resource accounting: RSS sampled from /proc/self/status and
// explicit per-arena byte counters with high-water tracking.
//
// The accounting idea follows the static-pool bookkeeping embedded node
// agents use (allocation counters + high-water marks per pool): the survey
// pipeline cannot afford a malloc interposer, but every subsystem that
// owns a growable buffer (interner string storage, validation cache,
// HTTP response buffers) can afford two relaxed atomic adds per growth
// event. The gauges feed `/metrics`:
//
//   process.rss_bytes            current resident set (0 where /proc is absent)
//   process.rss_peak_bytes       kernel-tracked VmHWM high water
//   process.threads              kernel-tracked thread count
//   mem.arena.<name>.bytes           current bytes accounted to the arena
//   mem.arena.<name>.peak_bytes      high-water mark since process start
//   mem.arena.<name>.allocations     total growth events
//
// Process gauges are sampled on demand (each `/metrics` scrape and each
// `--stats` render), not on a timer — a scrape IS the timer.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "util/arena.hpp"

namespace iotls::obs {

/// Point-in-time memory numbers from /proc/self/status. Zero-initialized
/// when the file is missing or unparseable (non-Linux), so callers can use
/// the values unconditionally.
struct ProcMemory {
  std::uint64_t rss_bytes = 0;       // VmRSS
  std::uint64_t rss_peak_bytes = 0;  // VmHWM
  std::uint64_t threads = 0;         // Threads
};

ProcMemory read_proc_memory();

/// Parse the body of a /proc/self/status-format document (split out for
/// testing without a live /proc).
ProcMemory parse_proc_status(const std::string& text);

/// Sample the process-level gauges into `registry` (defaults to the global
/// one). Safe to call from any thread, any number of times.
void sample_process_gauges(Registry& registry = metrics());

/// Byte accounting for one named allocation arena. Cheap enough for
/// per-growth-event calls: allocate()/release() are two relaxed atomic
/// operations plus a CAS loop only when a new high-water mark is set.
/// Gauges mirror into the given registry so the arena shows up on
/// `/metrics` without a sampling pass. Implements util's ArenaObserver so
/// an ArenaAllocator can be constructed directly on top of an account
/// (chunk growth/release land on the same gauges).
class ArenaAccount : public ArenaObserver {
 public:
  explicit ArenaAccount(const std::string& name, Registry& registry = metrics());

  void allocate(std::uint64_t bytes);
  void release(std::uint64_t bytes);

  // ArenaObserver (called by ArenaAllocator per chunk event).
  void on_arena_grow(std::uint64_t bytes) override { allocate(bytes); }
  void on_arena_release(std::uint64_t bytes) override { release(bytes); }

  std::uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  std::uint64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  std::uint64_t allocations() const {
    return allocations_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> allocations_{0};
  Gauge* bytes_gauge_;
  Gauge* peak_gauge_;
  Gauge* allocations_gauge_;
};

/// The shared accounts for the pipeline's long-lived arenas. Allocated once
/// and never destroyed (same lifetime discipline as the registry's
/// instruments).
ArenaAccount& interner_arena();
ArenaAccount& validation_cache_arena();
ArenaAccount& http_arena();
/// Snapshot container I/O: reader mappings + writer section scratch
/// (`mem.arena.snapshot.*`).
ArenaAccount& snapshot_arena();
/// CSV/row parse temporaries (`mem.arena.parse.*`).
ArenaAccount& parse_arena();

}  // namespace iotls::obs

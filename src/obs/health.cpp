#include "obs/health.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace iotls::obs {

namespace {

using Entry = std::pair<std::string, HealthCheck>;

std::vector<Entry>::iterator find_entry(std::vector<Entry>& v,
                                        const std::string& name) {
  return std::find_if(v.begin(), v.end(),
                      [&](const Entry& e) { return e.first == name; });
}

}  // namespace

void HealthRegistry::register_check(const std::string& name, HealthKind kind,
                                    HealthCheck fn) {
  std::string canonical = sanitize_metric_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& checks = slot(kind);
  auto it = find_entry(checks, canonical);
  if (it != checks.end()) {
    it->second = std::move(fn);
    return;
  }
  checks.emplace_back(std::move(canonical), std::move(fn));
  std::sort(checks.begin(), checks.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
}

void HealthRegistry::unregister(const std::string& name, HealthKind kind) {
  std::string canonical = sanitize_metric_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& checks = slot(kind);
  auto it = find_entry(checks, canonical);
  if (it != checks.end()) checks.erase(it);
}

HealthRegistry::Report HealthRegistry::run(HealthKind kind) const {
  // Checks run under the registry mutex: they are contractually cheap, and
  // holding the lock means a component's ScopedHealthCheck destructor can
  // never race a callback reading that component's freed state.
  std::lock_guard<std::mutex> lock(mu_);
  Report report;
  for (const auto& [name, fn] : slot(kind)) {
    HealthStatus status = fn ? fn() : HealthStatus::unhealthy("null check");
    report.ok = report.ok && status.ok;
    report.checks.push_back(CheckResult{name, std::move(status)});
  }
  return report;
}

Json HealthRegistry::to_json_value(HealthKind kind) const {
  Report report = run(kind);
  Json checks{Json::Object{}};
  for (const CheckResult& check : report.checks) {
    Json entry{Json::Object{}};
    entry.set("ok", Json(check.status.ok));
    entry.set("detail", Json(check.status.detail));
    checks.set(check.name, std::move(entry));
  }
  Json out{Json::Object{}};
  out.set("ok", Json(report.ok));
  out.set("checks", std::move(checks));
  return out;
}

std::size_t HealthRegistry::size(HealthKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slot(kind).size();
}

HealthRegistry& health() {
  static HealthRegistry registry;
  return registry;
}

ScopedHealthCheck::ScopedHealthCheck(std::string name, HealthKind kind,
                                     HealthCheck fn)
    : name_(sanitize_metric_name(name)), kind_(kind) {
  health().register_check(name_, kind_, std::move(fn));
}

ScopedHealthCheck::~ScopedHealthCheck() { health().unregister(name_, kind_); }

}  // namespace iotls::obs

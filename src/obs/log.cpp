#include "obs/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace iotls::obs {

std::string log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& text, LogLevel fallback) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return fallback;
}

namespace {

bool needs_quoting(const std::string& value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') return true;
  }
  return false;
}

void append_value(const std::string& value, std::string& out) {
  if (!needs_quoting(value)) {
    out += value;
    return;
  }
  out += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
}

}  // namespace

std::string format_record(const LogRecord& record) {
  std::string out = "level=" + log_level_name(record.level) + " msg=";
  append_value(record.message, out);
  for (const LogField& field : record.fields) {
    out += ' ';
    out += field.key;
    out += '=';
    append_value(field.value, out);
  }
  return out;
}

void StderrSink::write(const LogRecord& record) {
  std::string line = format_record(record);
  line += '\n';
  std::fputs(line.c_str(), stderr);
}

void RingBufferSink::write(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (buffer_.size() >= capacity_ && capacity_ > 0) {
    buffer_.pop_front();
    ++dropped_;
  }
  if (capacity_ > 0) buffer_.push_back(record);
}

std::vector<LogRecord> RingBufferSink::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {buffer_.begin(), buffer_.end()};
}

std::uint64_t RingBufferSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void RingBufferSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.clear();
  dropped_ = 0;
}

Logger::Logger() : sink_(std::make_shared<StderrSink>()) {
  LogLevel level = LogLevel::kWarn;
  if (const char* env = std::getenv("IOTLS_LOG_LEVEL")) {
    level = parse_log_level(env, level);
  }
  level_.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::set_sink(std::shared_ptr<LogSink> sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_ = std::move(sink);
}

std::shared_ptr<LogSink> Logger::sink() const {
  std::lock_guard<std::mutex> lock(sink_mu_);
  return sink_;
}

void Logger::log(LogLevel level, std::string message, std::vector<LogField> fields) {
  if (!enabled(level)) return;
  LogRecord record{level, std::move(message), std::move(fields)};
  if (std::shared_ptr<LogSink> s = sink()) s->write(record);
}

Logger& logger() {
  static Logger instance;
  return instance;
}

}  // namespace iotls::obs

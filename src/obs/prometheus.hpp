// Prometheus text exposition (format version 0.0.4) for the metric
// registry — what the embedded HTTP server serves on `/metrics`.
//
// Mapping from the registry's dotted names to the Prometheus data model:
//  * names are canonical already (Registry applies sanitize_metric_name at
//    registration); exposition additionally folds `.` to `_`, since dots
//    are invalid in Prometheus metric names;
//  * every metric gets `# HELP` (carrying the original dotted name, so a
//    dashboard can be mapped back to the `--stats=json` key) and `# TYPE`;
//  * histograms expand to `_bucket{le="..."}` lines with *cumulative*
//    counts, a `le="+Inf"` bucket equal to `_count`, plus `_sum`/`_count`.
//
// Output is byte-deterministic for a given registry state: counters, then
// gauges, then histograms, each name-sorted (the registry snapshots are
// already sorted maps).
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace iotls::obs {

/// Exposition spelling of a canonical registry name (`net.probe.total` ->
/// `net_probe_total`). Assumes the input already passed
/// sanitize_metric_name; applies it first otherwise.
std::string prometheus_name(const std::string& name);

/// Render the full registry in Prometheus text exposition format.
std::string prometheus_text(const Registry& registry);

/// Structural validator for the exposition grammar: every line must be a
/// `# HELP`/`# TYPE` comment or a `name[{labels}] value` sample with a
/// valid metric name and a decimal value. Used by tests and the
/// check_robustness.sh scrape phase; returns false and sets `error` (when
/// non-null) to the first offending line.
bool validate_exposition(const std::string& text, std::string* error = nullptr);

/// The content type a conforming scraper expects.
inline const char* prometheus_content_type() {
  return "text/plain; version=0.0.4; charset=utf-8";
}

}  // namespace iotls::obs

// The live export plane: standard observability routes mounted on an
// embedded HttpServer. This is the serving skeleton the `iotlsd` daemon
// (ROADMAP item 1) will mount its /report endpoints on; today the batch
// tools start it with `--serve=PORT` so a running survey can be watched
// from outside.
//
// Routes:
//   GET /metrics        Prometheus text exposition of the global registry
//                       (process RSS/thread gauges are sampled per scrape)
//   GET /stats          the same JSON document `--stats=json` prints:
//                       {"metrics":...,"stages":...}
//   GET /healthz        liveness checks from the global HealthRegistry;
//                       200 when all pass, 503 otherwise (JSON body either way)
//   GET /readyz         readiness checks, same contract
//   GET /trace          Chrome trace-event JSON of the recorder so far
//                       (empty traceEvents when `--trace-out` is off)
//   GET /quitquitquit   releases wait_for_shutdown() — how a supervisor
//                       (or check_robustness.sh) tells a lingering tool to exit
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/health.hpp"
#include "obs/http_server.hpp"

namespace iotls::obs {

class ExportPlane {
 public:
  ExportPlane();
  ~ExportPlane();

  ExportPlane(const ExportPlane&) = delete;
  ExportPlane& operator=(const ExportPlane&) = delete;

  /// Mount the standard routes and start serving on 127.0.0.1:`port`
  /// (0 = ephemeral). False + `error` when the socket cannot be bound.
  bool start(std::uint16_t port, std::string* error = nullptr);

  std::uint16_t port() const { return server_.port(); }
  HttpServer& server() { return server_; }

  /// Block until /quitquitquit is hit or request_stop() is called; with
  /// `timeout_ms > 0`, return after at most that long. Returns true when
  /// released by an explicit stop request, false on timeout.
  bool wait_for_shutdown(std::uint64_t timeout_ms = 0);

  /// Release wait_for_shutdown() (also wired to /quitquitquit).
  void request_stop();

  /// Shut the server down (stop accepting, drain handlers).
  void stop();

 private:
  HttpServer server_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::unique_ptr<ScopedHealthCheck> liveness_;
};

}  // namespace iotls::obs

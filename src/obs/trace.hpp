// Span-style pipeline stage tracer.
//
// Each pipeline phase (pcap decode -> fingerprint extraction -> corpus
// match -> probe -> chain validation -> report) opens a Span; on close the
// span's wall time, item count and failure reasons merge into the stage's
// accumulated stats. Repeated spans of the same stage accumulate, so a
// tool's per-SNI loop and a library's per-call span both roll up into one
// per-stage row of the final summary.
//
// Canonical stage names used across the pipeline:
//   pcap.decode, fingerprint.extract, corpus.match, probe,
//   chain.validate, report
//
// Thread-safety: a Span buffers its item/failure/reason tallies locally
// and merges them into the tracer under one mutex at end(), so worker
// threads may each hold their own Span concurrently (even for the same
// stage name) without contending per item. Sharing a single Span object
// across threads is NOT supported — give each worker its own, or tally in
// the parallel region and add_items() on the caller's span after the join
// (what TlsProber::survey_report does to keep stage rows deterministic).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace iotls::obs {

/// Accumulated statistics for one pipeline stage.
struct StageStats {
  std::uint64_t calls = 0;     // spans closed
  std::uint64_t items = 0;     // work units processed
  std::uint64_t failures = 0;  // work units that failed
  std::uint64_t wall_ns = 0;   // total wall time across spans
  std::map<std::string, std::uint64_t> failure_reasons;
};

class StageTracer {
 public:
  /// RAII span: records wall time from construction to end()/destruction.
  class Span {
   public:
    Span(StageTracer* tracer, std::string stage)
        : tracer_(tracer),
          stage_(std::move(stage)),
          start_(std::chrono::steady_clock::now()) {}
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    void add_items(std::uint64_t n = 1) { items_ += n; }
    /// Count a failed work unit under `reason` (also counts as an item
    /// if the caller did not add it separately — callers add items for
    /// successes and failures alike; fail() only tags the failure).
    void fail(const std::string& reason, std::uint64_t n = 1);

    /// Close the span and merge into the tracer. Idempotent.
    void end();

   private:
    StageTracer* tracer_ = nullptr;
    std::string stage_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t items_ = 0;
    std::uint64_t failures_ = 0;
    std::map<std::string, std::uint64_t> reasons_;
  };

  Span span(std::string stage) { return Span(this, std::move(stage)); }

  /// Stages in first-seen order with their accumulated stats.
  std::vector<std::pair<std::string, StageStats>> snapshot() const;

  void reset();

  /// {"<stage>":{"calls":..,"items":..,"failures":..,"wall_ns":..,
  ///             "failure_reasons":{...}}, ...} in first-seen order.
  Json to_json_value() const;
  std::string to_json() const { return to_json_value().dump(); }

 private:
  friend class Span;
  void record(const std::string& stage, std::uint64_t wall_ns,
              std::uint64_t items, std::uint64_t failures,
              const std::map<std::string, std::uint64_t>& reasons);

  mutable std::mutex mu_;
  std::vector<std::string> order_;
  std::map<std::string, StageStats> stages_;
};

/// The process-wide tracer the pipeline stages report into.
StageTracer& tracer();

}  // namespace iotls::obs

// Pipeline tracing: aggregated stage profiling plus optional span-level
// flight recording.
//
// Two cooperating layers share the instrumentation points:
//
//  * StageTracer (always on, cheap): each pipeline phase (pcap decode ->
//    fingerprint extraction -> corpus match -> probe -> chain validation ->
//    report) opens a Span; on close the span's wall time, item count and
//    failure reasons merge into the stage's accumulated stats. Repeated
//    spans of the same stage accumulate, so a tool's per-SNI loop and a
//    library's per-call span both roll up into one per-stage row of the
//    final `--stats` summary.
//
//  * TraceRecorder (off by default, `--trace-out=FILE` turns it on): when
//    enabled, every span — StageTracer spans and the lighter TraceSpan
//    markers — additionally records an individual timed event carrying a
//    stable per-thread ordinal, a unique span id and a parent link derived
//    from the per-thread span stack. The recorded events export as Chrome
//    trace-event JSON ("traceEvents" of "ph":"X" complete events), loadable
//    in chrome://tracing or Perfetto, so a `--jobs 8` survey renders as a
//    real per-worker flamegraph. When disabled, the only cost at a span
//    site is one relaxed atomic load (enforced by bench_obs_overhead).
//
// Canonical stage names used across the pipeline:
//   pcap.decode, fingerprint.extract, corpus.match, probe, probe.shard,
//   chain.validate, report
// Span-level names nest under them: net.survey_one (one SNI, all
// vantages) -> net.probe (one SNI x vantage attempt loop).
//
// Thread-safety: a StageTracer::Span buffers its item/failure/reason
// tallies locally and merges them into the tracer under one mutex at
// end(), so worker threads may each hold their own Span concurrently (even
// for the same stage name) without contending per item. Sharing a single
// Span object across threads is NOT supported — give each worker its own,
// or tally in the parallel region and add_items() on the caller's span
// after the join (what TlsProber::survey_report does to keep stage rows
// deterministic). Span open/close must happen on one thread (the parent
// link comes from that thread's span stack).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace iotls::obs {

/// One recorded span: a closed interval on one thread's timeline.
struct TraceEvent {
  std::string name;
  std::string detail;        // optional, e.g. "sni=a2.tuyaus.com"
  std::uint64_t start_ns = 0;  // since TraceRecorder::enable()
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;     // stable per-thread ordinal (0 = first thread)
  std::uint64_t id = 0;      // unique per span, 1-based
  std::uint64_t parent = 0;  // id of the enclosing span on this thread, 0 = root
  std::uint64_t items = 0;
  std::uint64_t failures = 0;
};

/// Span-level flight recorder. Disabled by default; enable() starts a new
/// recording epoch. Bounded: at most `capacity` events are kept (the
/// default fits a full `--all --jobs 8` survey many times over); overflow
/// increments dropped() instead of growing without bound.
class TraceRecorder {
 public:
  struct OpenSpan {
    std::uint64_t id = 0;
    std::uint64_t parent = 0;
  };

  void enable();
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since enable() (0 when never enabled).
  std::uint64_t now_ns() const;

  /// Assign a span id, link it to the calling thread's innermost open span
  /// and push it on that thread's stack. Only call while enabled.
  OpenSpan open_span();
  /// Pop `span` from the calling thread's stack and record `ev` (id/parent/
  /// tid are filled in from `span` and the calling thread).
  void close_span(const OpenSpan& span, TraceEvent ev);

  /// Recorded events sorted by (start_ns, id) — deterministic for a given
  /// set of spans regardless of which worker closed first.
  std::vector<TraceEvent> events() const;
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void set_capacity(std::size_t capacity);

  /// {"displayTimeUnit":"ms","traceEvents":[...]} — Chrome trace-event
  /// JSON (complete "X" events, microsecond timestamps), loadable in
  /// chrome://tracing and Perfetto.
  Json chrome_trace_json() const;
  /// Serialize chrome_trace_json() to `path`; false + `error` on I/O failure.
  bool write_chrome_trace(const std::string& path, std::string* error = nullptr) const;

  /// Drop all recorded events (keeps the enabled state and epoch).
  void reset();

  /// Stable small ordinal for the calling thread (shared with nothing else;
  /// purely a display id for trace tracks).
  static std::uint32_t thread_ordinal();

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_{};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = 1u << 20;
};

/// The process-wide recorder `--trace-out` enables.
TraceRecorder& recorder();

/// Lightweight RAII span that reports only to the recorder: a no-op (one
/// relaxed load) when recording is off, so it can sit on per-probe paths
/// that are too hot for a StageTracer merge. `name` must outlive the span
/// (string literals at every call site).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!obs::recorder().enabled()) return;
    active_ = true;
    name_ = name;
    start_ = obs::recorder().now_ns();
    open_ = obs::recorder().open_span();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { end(); }

  bool active() const { return active_; }
  /// Attach a free-form detail string (call sites guard on active() to
  /// avoid building the string when recording is off).
  void detail(std::string d) {
    if (active_) detail_ = std::move(d);
  }

  void end();

 private:
  bool active_ = false;
  const char* name_ = "";
  std::string detail_;
  std::uint64_t start_ = 0;
  TraceRecorder::OpenSpan open_;
};

/// Accumulated statistics for one pipeline stage.
struct StageStats {
  std::uint64_t calls = 0;     // spans closed
  std::uint64_t items = 0;     // work units processed
  std::uint64_t failures = 0;  // work units that failed
  std::uint64_t wall_ns = 0;   // total wall time across spans
  std::map<std::string, std::uint64_t> failure_reasons;
};

class StageTracer {
 public:
  /// RAII span: records wall time from construction to end()/destruction.
  class Span {
   public:
    Span(StageTracer* tracer, std::string stage)
        : tracer_(tracer),
          stage_(std::move(stage)),
          start_(std::chrono::steady_clock::now()) {
      maybe_open_trace();
    }
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    void add_items(std::uint64_t n = 1) { items_ += n; }
    /// Count a failed work unit under `reason` (also counts as an item
    /// if the caller did not add it separately — callers add items for
    /// successes and failures alike; fail() only tags the failure).
    void fail(const std::string& reason, std::uint64_t n = 1);

    /// Close the span and merge into the tracer. Idempotent.
    void end();

   private:
    /// When the recorder is enabled, also open a trace-level span so the
    /// stage shows up in the Chrome trace. One relaxed load when disabled.
    void maybe_open_trace();

    StageTracer* tracer_ = nullptr;
    std::string stage_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t items_ = 0;
    std::uint64_t failures_ = 0;
    std::map<std::string, std::uint64_t> reasons_;
    bool trace_active_ = false;
    std::uint64_t trace_start_ns_ = 0;
    TraceRecorder::OpenSpan trace_open_;
  };

  Span span(std::string stage) { return Span(this, std::move(stage)); }

  /// Stages in first-seen order with their accumulated stats.
  std::vector<std::pair<std::string, StageStats>> snapshot() const;

  void reset();

  /// {"<stage>":{"calls":..,"items":..,"failures":..,"wall_ns":..,
  ///             "failure_reasons":{...}}, ...} in first-seen order.
  Json to_json_value() const;
  std::string to_json() const { return to_json_value().dump(); }

 private:
  friend class Span;
  void record(const std::string& stage, std::uint64_t wall_ns,
              std::uint64_t items, std::uint64_t failures,
              const std::map<std::string, std::uint64_t>& reasons);

  mutable std::mutex mu_;
  std::vector<std::string> order_;
  std::map<std::string, StageStats> stages_;
};

/// The process-wide tracer the pipeline stages report into.
StageTracer& tracer();

}  // namespace iotls::obs

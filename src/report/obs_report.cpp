#include "report/obs_report.hpp"

#include <cstdio>

#include "obs/resource.hpp"

namespace iotls::report {

namespace {

// resource.hpp promises process gauges are sampled on every --stats render
// (a render IS the timer, like a /metrics scrape). Sampling targets the
// global registry; renders over a private registry (tests) are unaffected.
void sample_if_global(const obs::Registry& registry) {
  if (&registry == &obs::metrics()) obs::sample_process_gauges();
}

}  // namespace

namespace {

std::string fmt_ms(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string dominant_reason(const obs::StageStats& stats) {
  std::string reason = "-";
  std::uint64_t best = 0;
  for (const auto& [name, n] : stats.failure_reasons) {
    if (n > best) {
      best = n;
      reason = name + " (" + std::to_string(n) + ")";
    }
  }
  return reason;
}

}  // namespace

Table stage_summary_table(const obs::StageTracer& tracer) {
  Table table({"stage", "calls", "items", "failures", "wall ms", "top failure"});
  for (const auto& [stage, stats] : tracer.snapshot()) {
    table.add_row({stage, std::to_string(stats.calls), std::to_string(stats.items),
                   std::to_string(stats.failures), fmt_ms(stats.wall_ns),
                   dominant_reason(stats)});
  }
  return table;
}

Table counter_table(const obs::Registry& registry) {
  Table table({"counter", "value"});
  for (const auto& [name, value] : registry.counter_values()) {
    table.add_row({name, std::to_string(value)});
  }
  return table;
}

Table histogram_table(const obs::Registry& registry) {
  Table table({"histogram", "count", "sum", "p50 <=", "p99 <="});
  for (const auto& [name, hist] : registry.histogram_entries()) {
    table.add_row({name, std::to_string(hist->count()), std::to_string(hist->sum()),
                   std::to_string(hist->quantile_bound(0.5)),
                   std::to_string(hist->quantile_bound(0.99))});
  }
  return table;
}

std::string stats_text(const obs::Registry& registry,
                       const obs::StageTracer& tracer) {
  sample_if_global(registry);
  std::string out;
  Table stages = stage_summary_table(tracer);
  if (stages.rows() > 0) {
    out += "pipeline stages\n";
    out += stages.render();
    out += "\n";
  }
  Table counters = counter_table(registry);
  if (counters.rows() > 0) {
    out += counters.render();
    out += "\n";
  }
  Table histograms = histogram_table(registry);
  if (histograms.rows() > 0) {
    out += histograms.render();
  }
  return out;
}

std::string stats_json(const obs::Registry& registry,
                       const obs::StageTracer& tracer) {
  sample_if_global(registry);
  obs::Json out{obs::Json::Object{}};
  out.set("metrics", registry.to_json_value());
  out.set("stages", tracer.to_json_value());
  return out.dump();
}

}  // namespace iotls::report

#include "report/dot.hpp"

#include <map>

namespace iotls::report {

namespace {

const char* level_color(tls::SecurityLevel level) {
  switch (level) {
    case tls::SecurityLevel::kOptimal:
    case tls::SecurityLevel::kSuboptimal:
      return "#4c78c8";  // blue
    case tls::SecurityLevel::kVulnerable:
      return "#d62728";  // red
    case tls::SecurityLevel::kSignalling:
      return "#cccccc";
  }
  return "#cccccc";
}

/// Stable compact node id per fingerprint key.
std::string fp_node_id(std::map<std::string, int>& ids, const std::string& key) {
  auto it = ids.find(key);
  if (it == ids.end()) it = ids.emplace(key, static_cast<int>(ids.size())).first;
  return "fp" + std::to_string(it->second);
}

}  // namespace

std::string vendor_fp_dot(const core::VendorFpGraph& graph) {
  std::string out = "graph vendor_fingerprints {\n"
                    "  layout=sfdp; overlap=prism; splines=false;\n"
                    "  node [fontsize=8];\n";
  for (const auto& [vendor, index] : graph.vendor_index) {
    out += "  \"v" + std::to_string(index) + "\" [shape=box, style=filled, "
           "fillcolor=white, label=\"" + std::to_string(index) + "\"];\n";
  }
  std::map<std::string, int> fp_ids;
  for (const auto& [key, level] : graph.fp_level) {
    out += "  \"" + fp_node_id(fp_ids, key) + "\" [shape=circle, style=filled, "
           "label=\"\", fillcolor=\"" + level_color(level) + "\"];\n";
  }
  for (const auto& [vendor, key] : graph.edges) {
    int index = graph.vendor_index.at(vendor);
    out += "  \"v" + std::to_string(index) + "\" -- \"" + fp_node_id(fp_ids, key) +
           "\";\n";
  }
  out += "}\n";
  return out;
}

std::string type_cluster_dot(const core::TypeClusterStats& stats) {
  std::string out = "graph type_clusters {\n"
                    "  layout=sfdp; overlap=prism;\n"
                    "  node [fontsize=8];\n";
  std::map<std::string, int> fp_ids;
  int type_id = 0;
  for (const auto& [type, fps] : stats.type_fps) {
    std::string tnode = "t" + std::to_string(type_id++);
    out += "  \"" + tnode + "\" [shape=box, style=filled, fillcolor=white, label=\"" +
           type + "\"];\n";
    for (const std::string& key : fps) {
      std::string fnode = fp_node_id(fp_ids, key);
      out += "  \"" + fnode + "\" [shape=circle, label=\"\", style=filled, "
             "fillcolor=\"#9ecae1\"];\n";
      out += "  \"" + tnode + "\" -- \"" + fnode + "\";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace iotls::report

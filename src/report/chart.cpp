#include "report/chart.hpp"

#include <algorithm>
#include <cstdio>

#include "util/strings.hpp"

namespace iotls::report {

std::string render_cdf(const std::string& label, std::vector<double> values,
                       const std::vector<double>& thresholds) {
  std::sort(values.begin(), values.end());
  std::string out = label + " (n=" + std::to_string(values.size()) + ")\n";
  for (double t : thresholds) {
    std::size_t covered = static_cast<std::size_t>(
        std::upper_bound(values.begin(), values.end(), t) - values.begin());
    double ratio = values.empty() ? 0 : static_cast<double>(covered) / values.size();
    int bar = static_cast<int>(ratio * 40);
    char line[160];
    std::snprintf(line, sizeof line, "  <= %5.2f : %6.2f%%  |%-40s|\n", t,
                  ratio * 100.0, std::string(static_cast<std::size_t>(bar), '#').c_str());
    out += line;
  }
  return out;
}

std::string render_bars(const std::string& title,
                        const std::vector<std::pair<std::string, double>>& bars,
                        int width) {
  double max = 0;
  std::size_t label_width = 0;
  for (const auto& [label, value] : bars) {
    max = std::max(max, value);
    label_width = std::max(label_width, label.size());
  }
  std::string out = title + "\n";
  for (const auto& [label, value] : bars) {
    int len = max > 0 ? static_cast<int>(value / max * width) : 0;
    std::string line = "  " + label;
    line.append(label_width - label.size(), ' ');
    line += " | " + std::string(static_cast<std::size_t>(len), '#');
    line += " " + fmt_double(value, 2) + "\n";
    out += line;
  }
  return out;
}

Summary summarize(std::vector<double> values) {
  Summary s;
  s.n = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  auto q = [&](double p) {
    double idx = p * static_cast<double>(values.size() - 1);
    std::size_t lo = static_cast<std::size_t>(idx);
    std::size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return values[lo] * (1 - frac) + values[hi] * frac;
  };
  s.min = values.front();
  s.p25 = q(0.25);
  s.median = q(0.5);
  s.p75 = q(0.75);
  s.max = values.back();
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  return s;
}

std::string render_summary(const std::string& label, const Summary& s) {
  char line[256];
  std::snprintf(line, sizeof line,
                "  %-28s n=%-5zu min=%-8.1f p25=%-8.1f med=%-8.1f p75=%-8.1f "
                "max=%-8.1f mean=%.1f\n",
                label.c_str(), s.n, s.min, s.p25, s.median, s.p75, s.max, s.mean);
  return line;
}

}  // namespace iotls::report

// Rendering of observability state (metrics + stage traces) for the tools'
// `--stats[=json]` flag and the benches' final summaries.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/table.hpp"

namespace iotls::report {

/// One row per pipeline stage in first-seen order: calls, items, failures,
/// wall time and the dominant failure reason.
Table stage_summary_table(const obs::StageTracer& tracer);

/// One row per counter, sorted by name.
Table counter_table(const obs::Registry& registry);

/// One row per histogram: count, sum and coarse quantile bounds.
Table histogram_table(const obs::Registry& registry);

/// Full human-readable stats block: stage summary followed by counters and
/// histograms, rendered through the Table machinery.
std::string stats_text(const obs::Registry& registry,
                       const obs::StageTracer& tracer);

/// {"metrics": <registry export>, "stages": <tracer export>} — one valid
/// JSON document carrying everything `--stats=json` promises.
std::string stats_json(const obs::Registry& registry,
                       const obs::StageTracer& tracer);

}  // namespace iotls::report

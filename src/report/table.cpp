#include "report/table.hpp"

#include <algorithm>

namespace iotls::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) line += "  ";
      line += cells[i];
      line.append(widths[i] - cells[i].size(), ' ');
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : 0, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += "\"\"";
      else out.push_back(c);
    }
    out += '"';
    return out;
  };
  std::string out;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i > 0) out += ',';
    out += quote(headers_[i]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += quote(row[i]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace iotls::report

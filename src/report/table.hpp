// Fixed-width text table renderer for the benchmark harness output.
#pragma once

#include <string>
#include <vector>

namespace iotls::report {

/// A simple console table: headers plus rows, rendered with column widths
/// fitted to content.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }

  /// Render with aligned columns and a header separator.
  std::string render() const;

  /// Render as CSV (quoting cells containing commas/quotes).
  std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace iotls::report

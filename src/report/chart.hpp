// Text renderers for the paper's figures: CDFs, histograms, scatter
// summaries. Benchmarks print these so every figure has a regenerable
// console form.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace iotls::report {

/// Render a CDF of `values` sampled at fixed thresholds, e.g.
///   DoC <= 0.00 : 12.3%   |#####            |
std::string render_cdf(const std::string& label, std::vector<double> values,
                       const std::vector<double>& thresholds);

/// Render a labelled horizontal bar chart from (label, value) pairs.
std::string render_bars(const std::string& title,
                        const std::vector<std::pair<std::string, double>>& bars,
                        int width = 48);

/// Summarize a distribution (min / p25 / median / p75 / max / mean).
struct Summary {
  double min = 0, p25 = 0, median = 0, p75 = 0, max = 0, mean = 0;
  std::size_t n = 0;
};
Summary summarize(std::vector<double> values);
std::string render_summary(const std::string& label, const Summary& s);

}  // namespace iotls::report

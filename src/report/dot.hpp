// Graphviz DOT export for the paper's graph figures (Figs. 1, 3, 4).
#pragma once

#include <string>

#include "core/device_metrics.hpp"
#include "core/vendor_metrics.hpp"

namespace iotls::report {

/// Fig. 1: the vendor–fingerprint bipartite graph. Vendor nodes are white
/// boxes labelled with their Table-13 index; fingerprint nodes are coloured
/// by security level (blue = optimal/suboptimal, orange/red = vulnerable).
std::string vendor_fp_dot(const core::VendorFpGraph& graph);

/// Fig. 3: device types of one vendor against their fingerprints.
std::string type_cluster_dot(const core::TypeClusterStats& stats);

}  // namespace iotls::report

#include "x509/validation.hpp"

#include <atomic>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "util/error.hpp"

namespace iotls::x509 {

std::string chain_status_name(ChainStatus s) {
  switch (s) {
    case ChainStatus::kOk: return "ok";
    case ChainStatus::kOkRootOmitted: return "ok (root omitted)";
    case ChainStatus::kSelfSigned: return "self-signed certificate";
    case ChainStatus::kUntrustedRoot: return "untrusted root CA";
    case ChainStatus::kIncompleteChain: return "incomplete chain";
    case ChainStatus::kBadSignature: return "bad signature";
    case ChainStatus::kEmptyChain: return "empty chain";
  }
  return "?";
}

std::string chain_status_slug(ChainStatus s) {
  switch (s) {
    case ChainStatus::kOk: return "ok";
    case ChainStatus::kOkRootOmitted: return "ok_root_omitted";
    case ChainStatus::kSelfSigned: return "self_signed";
    case ChainStatus::kUntrustedRoot: return "untrusted_root";
    case ChainStatus::kIncompleteChain: return "incomplete_chain";
    case ChainStatus::kBadSignature: return "bad_signature";
    case ChainStatus::kEmptyChain: return "empty_chain";
  }
  return "unknown";
}

namespace {

/// Per-verdict counters mirroring the paper's Table 7 failure classes,
/// plus the orthogonal expiry/hostname flags; fed by every validation.
void count_verdict(const ValidationResult& result) {
  static obs::Counter* by_status[] = {
      &obs::metrics().counter("x509.validate.ok"),
      &obs::metrics().counter("x509.validate.ok_root_omitted"),
      &obs::metrics().counter("x509.validate.self_signed"),
      &obs::metrics().counter("x509.validate.untrusted_root"),
      &obs::metrics().counter("x509.validate.incomplete_chain"),
      &obs::metrics().counter("x509.validate.bad_signature"),
      &obs::metrics().counter("x509.validate.empty_chain"),
  };
  static obs::Counter& total = obs::metrics().counter("x509.validate.total");
  static obs::Counter& expired = obs::metrics().counter("x509.validate.expired");
  static obs::Counter& not_yet_valid =
      obs::metrics().counter("x509.validate.not_yet_valid");
  static obs::Counter& hostname_mismatch =
      obs::metrics().counter("x509.validate.hostname_mismatch");

  total.inc();
  by_status[static_cast<std::size_t>(result.status)]->inc();
  if (result.expired) expired.inc();
  if (result.not_yet_valid) not_yet_valid.inc();
  if (!result.hostname_ok) hostname_mismatch.inc();
}

/// Verify cert's signature using the key identified by its authority_key_id.
/// Returns false when the key is unknown or the signature does not verify.
bool verify_signature(const Certificate& cert, const KeyRegistry& keys) {
  const crypto::KeyPair* key = keys.find(cert.authority_key_id);
  if (key == nullptr) return false;
  Bytes tbs = cert.tbs_bytes();
  return crypto::verify(*key, BytesView(tbs.data(), tbs.size()),
                        BytesView(cert.signature.data(), cert.signature.size()));
}

/// Identity tuple the cache keys on (see the ValidationCache doc comment
/// for why this replaces a TBS digest).
std::string cert_cache_key(const Certificate& cert) {
  std::string key;
  key.reserve(cert.authority_key_id.size() + cert.subject_key_id.size() + 32);
  key += cert.authority_key_id;
  key += '\x1f';
  key += cert.subject_key_id;
  key += '\x1f';
  key += std::to_string(cert.serial);
  key += '\x1f';
  key += std::to_string(cert.not_before);
  key += '\x1f';
  key += std::to_string(cert.not_after);
  return key;
}

std::string ocsp_cache_key(const OcspResponse& response) {
  std::string key;
  key += 'o';  // disjoint from certificate keys (those start with a key id)
  key += '\x1f';
  key += response.responder_key_id;
  key += '\x1f';
  key += std::to_string(response.serial);
  key += '\x1f';
  key += std::to_string(static_cast<int>(response.status));
  key += '\x1f';
  key += std::to_string(response.this_update);
  key += '\x1f';
  key += std::to_string(response.next_update);
  return key;
}

}  // namespace

ValidationCache::ValidationCache() {
  static std::atomic<std::uint64_t> next_id{0};
  std::uint64_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  health_ = std::make_unique<obs::ScopedHealthCheck>(
      "x509.validation_cache." + std::to_string(id), obs::HealthKind::kLiveness,
      [this] {
        char detail[48];
        std::snprintf(detail, sizeof detail, "entries=%zu", this->entries());
        return obs::HealthStatus::healthy(detail);
      });
}

ValidationCache::~ValidationCache() {
  health_.reset();  // before members the callback reads are torn down
  obs::validation_cache_arena().release(accounted_bytes_);
}

ValidationCache::Shard& ValidationCache::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kShardCount];
}

void ValidationCache::account_insert(const std::string& key) {
  // Approximate resident cost of one memoized verdict: the key bytes plus
  // the unordered_map node overhead.
  std::uint64_t bytes = key.size() + sizeof(void*) * 4;
  obs::validation_cache_arena().allocate(bytes);
  std::lock_guard<std::mutex> lock(account_mu_);
  accounted_bytes_ += bytes;
}

bool ValidationCache::signature_ok(const Certificate& cert,
                                   const KeyRegistry& keys) {
  static obs::Counter& hits = obs::metrics().counter("x509.cache.hit");
  static obs::Counter& misses = obs::metrics().counter("x509.cache.miss");
  const std::string key = cert_cache_key(cert);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.verdicts.find(key);
  if (it != shard.verdicts.end()) {
    hits.inc();
    return it->second;
  }
  misses.inc();
  // Verify under the shard lock: racing workers wait instead of duplicating
  // the work, keeping the miss count == distinct certificates at any jobs.
  bool ok = verify_signature(cert, keys);
  shard.verdicts.emplace(key, ok);
  account_insert(key);
  return ok;
}

bool ValidationCache::ocsp_ok(const OcspResponse& response,
                              const KeyRegistry& keys) {
  static obs::Counter& hits = obs::metrics().counter("x509.cache.hit");
  static obs::Counter& misses = obs::metrics().counter("x509.cache.miss");
  const std::string key = ocsp_cache_key(response);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.verdicts.find(key);
  if (it != shard.verdicts.end()) {
    hits.inc();
    return it->second;
  }
  misses.inc();
  bool ok = verify_ocsp(response, keys);
  shard.verdicts.emplace(key, ok);
  account_insert(key);
  return ok;
}

std::size_t ValidationCache::entries() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.verdicts.size();
  }
  return total;
}

std::vector<Certificate> normalize_chain_order(std::vector<Certificate> chain,
                                               const std::string& hostname) {
  if (chain.size() < 2) return chain;

  // Degenerate duplicate chains (identical certs) are already "ordered".
  bool all_identical = true;
  for (const Certificate& cert : chain) {
    if (!(cert == chain.front())) all_identical = false;
  }
  if (all_identical) return chain;

  // Pick the leaf: covers the hostname, else is nobody's issuer.
  std::size_t leaf_index = chain.size();
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (chain[i].matches_hostname(hostname)) {
      leaf_index = i;
      break;
    }
  }
  if (leaf_index == chain.size()) {
    for (std::size_t i = 0; i < chain.size(); ++i) {
      bool signs_someone = false;
      for (std::size_t j = 0; j < chain.size(); ++j) {
        if (i != j && chain[j].issuer == chain[i].subject) signs_someone = true;
      }
      if (!signs_someone) {
        leaf_index = i;
        break;
      }
    }
  }
  if (leaf_index == chain.size()) return chain;  // cyclic/odd: leave as served

  std::vector<Certificate> ordered;
  std::vector<bool> used(chain.size(), false);
  ordered.push_back(chain[leaf_index]);
  used[leaf_index] = true;
  bool extended = true;
  while (extended) {
    extended = false;
    const Certificate& tail = ordered.back();
    if (tail.self_signed()) break;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (used[i] || chain[i].subject != tail.issuer) continue;
      ordered.push_back(chain[i]);
      used[i] = true;
      extended = true;
      break;
    }
  }
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (!used[i]) ordered.push_back(chain[i]);
  }
  return ordered;
}

namespace {

ValidationResult validate_chain_impl(const std::vector<Certificate>& chain,
                                     const std::string& hostname,
                                     const TrustStoreSet& trust,
                                     const KeyRegistry& keys, std::int64_t now,
                                     ValidationCache* cache) {
  ValidationResult result;
  result.chain_length = chain.size();
  if (chain.empty()) {
    result.status = ChainStatus::kEmptyChain;
    result.detail = "server presented no certificates";
    return result;
  }

  const Certificate& leaf = chain.front();
  result.hostname_ok = leaf.matches_hostname(hostname);
  for (const Certificate& cert : chain) {
    if (cert.expired_at(now)) result.expired = true;
    if (cert.not_yet_valid_at(now)) result.not_yet_valid = true;
  }

  // Signature walk: every certificate must verify under its authority key;
  // adjacency must link issuer(i) == subject(i+1).
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    if (chain[i].issuer != chain[i + 1].subject) {
      result.status = ChainStatus::kIncompleteChain;
      result.detail = "issuer of '" + chain[i].subject.common_name +
                      "' does not match next subject";
      return result;
    }
  }
  for (const Certificate& cert : chain) {
    // A self-signed member verifies under its own key (in the registry if
    // the signer published it); failure anywhere is a hard error.
    bool ok = cache != nullptr ? cache->signature_ok(cert, keys)
                               : verify_signature(cert, keys);
    if (!ok) {
      result.status = ChainStatus::kBadSignature;
      result.detail = "signature of '" + cert.subject.common_name +
                      "' does not verify (authority key " +
                      cert.authority_key_id + ")";
      return result;
    }
  }

  // The paper's "self-signed certificate" category: the leaf itself has
  // identical subject and issuer. (A chain of repeated identical certs, as
  // log.samsunghrm.com serves, lands here too.)
  if (leaf.self_signed() && !trust.contains_key(leaf.subject_key_id)) {
    result.status = ChainStatus::kSelfSigned;
    result.detail = "leaf is self-signed (" + leaf.subject.to_string() + ")";
    return result;
  }

  const Certificate& top = chain.back();
  if (top.self_signed()) {
    // Full chain ends in a root: trusted iff the root is in a store.
    if (trust.contains_key(top.subject_key_id)) {
      result.status = ChainStatus::kOk;
      result.detail = "chain anchors at trusted root '" +
                      top.subject.common_name + "'";
    } else {
      result.status = ChainStatus::kUntrustedRoot;
      result.detail = "root '" + top.subject.common_name +
                      "' is in no trust store";
    }
    return result;
  }

  // Root omitted from the served chain: acceptable if a store knows the
  // issuing key (RFC 5246 allows omitting a root the peer already has).
  if (trust.contains_key(top.authority_key_id)) {
    result.status = ChainStatus::kOkRootOmitted;
    result.detail = "root omitted; issuer key found in trust store";
  } else {
    result.status = ChainStatus::kIncompleteChain;
    result.detail = "issuer '" + top.issuer.to_string() +
                    "' of topmost certificate not found in chain or stores";
  }
  return result;
}

}  // namespace

ValidationResult validate_chain(const std::vector<Certificate>& chain,
                                const std::string& hostname,
                                const TrustStoreSet& trust,
                                const KeyRegistry& keys, std::int64_t now,
                                ValidationCache* cache) {
  ValidationResult result =
      validate_chain_impl(chain, hostname, trust, keys, now, cache);
  count_verdict(result);
  return result;
}

ValidationResult validate_encoded_chain(const std::vector<Bytes>& encoded_chain,
                                        const std::string& hostname,
                                        const TrustStoreSet& trust,
                                        const KeyRegistry& keys,
                                        std::int64_t now,
                                        ValidationCache* cache) {
  std::vector<Certificate> chain;
  chain.reserve(encoded_chain.size());
  for (const Bytes& enc : encoded_chain) {
    try {
      chain.push_back(Certificate::parse(BytesView(enc.data(), enc.size())));
    } catch (const ParseError& e) {
      ValidationResult result;
      result.status = ChainStatus::kBadSignature;
      result.chain_length = encoded_chain.size();
      result.detail = std::string("undecodable certificate: ") + e.what();
      count_verdict(result);
      return result;
    }
  }
  return validate_chain(chain, hostname, trust, keys, now, cache);
}

}  // namespace iotls::x509

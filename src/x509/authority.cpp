#include "x509/authority.hpp"

#include "util/rng.hpp"

namespace iotls::x509 {

void KeyRegistry::register_key(const crypto::KeyPair& key) {
  keys_[key.key_id] = key;
}

const crypto::KeyPair* KeyRegistry::find(const std::string& key_id) const {
  auto it = keys_.find(key_id);
  return it == keys_.end() ? nullptr : &it->second;
}

CertificateAuthority CertificateAuthority::make_root(
    const std::string& common_name, const std::string& org, CaKind kind,
    std::int64_t not_before, std::int64_t not_after) {
  CertificateAuthority ca;
  ca.kind_ = kind;
  ca.key_ = crypto::derive_keypair("ca:" + org + ":" + common_name);

  Certificate& c = ca.cert_;
  c.subject = DistinguishedName{common_name, org, "US"};
  c.issuer = c.subject;  // self-signed root
  c.serial = fnv1a64(common_name) | 1;
  c.not_before = not_before;
  c.not_after = not_after;
  c.is_ca = true;
  c.subject_key_id = ca.key_.key_id;
  c.authority_key_id = ca.key_.key_id;
  Bytes tbs = c.tbs_bytes();
  c.signature = crypto::sign(ca.key_, BytesView(tbs.data(), tbs.size()));
  return ca;
}

CertificateAuthority CertificateAuthority::subordinate(
    const std::string& common_name, std::int64_t not_before,
    std::int64_t not_after, const std::string& org) const {
  const std::string child_org = org.empty() ? organization() : org;
  CertificateAuthority sub;
  sub.kind_ = kind_;
  sub.key_ = crypto::derive_keypair("ca:" + child_org + ":" + common_name);

  IssueRequest req;
  req.subject = DistinguishedName{common_name, child_org, "US"};
  req.not_before = not_before;
  req.not_after = not_after;
  req.is_ca = true;
  req.subject_key = &sub.key_;
  sub.cert_ = issue(req);
  return sub;
}

Certificate CertificateAuthority::issue(const IssueRequest& req) const {
  Certificate c;
  c.serial = (fnv1a64(req.subject.common_name) << 16) | next_serial_++;
  c.subject = req.subject;
  c.issuer = cert_.subject;
  c.not_before = req.not_before;
  c.not_after = req.not_after;
  c.san_dns = req.san_dns;
  c.is_ca = req.is_ca;
  crypto::KeyPair subject_key =
      req.subject_key ? *req.subject_key : subject_keypair(req.subject.common_name);
  c.subject_key_id = subject_key.key_id;
  c.authority_key_id = key_.key_id;
  Bytes tbs = c.tbs_bytes();
  c.signature = crypto::sign(key_, BytesView(tbs.data(), tbs.size()));
  return c;
}

crypto::KeyPair subject_keypair(const std::string& common_name) {
  return crypto::derive_keypair("subject:" + common_name);
}

}  // namespace iotls::x509

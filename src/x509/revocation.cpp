#include "x509/revocation.hpp"

#include "util/error.hpp"
#include "util/reader.hpp"
#include "util/writer.hpp"

namespace iotls::x509 {

std::string revocation_status_name(RevocationStatus s) {
  switch (s) {
    case RevocationStatus::kGood: return "good";
    case RevocationStatus::kRevoked: return "revoked";
    case RevocationStatus::kUnknown: return "unknown";
  }
  return "?";
}

Bytes OcspResponse::signed_bytes() const {
  Writer w;
  w.u64(serial);
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(static_cast<std::uint64_t>(this_update));
  w.u64(static_cast<std::uint64_t>(next_update));
  w.u8(static_cast<std::uint8_t>(responder_key_id.size()));
  w.str(responder_key_id);
  return w.take();
}

Bytes OcspResponse::encode() const {
  Writer w;
  Bytes body = signed_bytes();
  w.u16(static_cast<std::uint16_t>(body.size()));
  w.raw(BytesView(body.data(), body.size()));
  w.u16(static_cast<std::uint16_t>(signature.size()));
  w.raw(BytesView(signature.data(), signature.size()));
  return w.take();
}

OcspResponse OcspResponse::parse(BytesView encoded) {
  Reader outer(encoded);
  std::uint16_t body_len = outer.u16();
  Reader r(outer.view(body_len));
  OcspResponse resp;
  resp.serial = r.u64();
  std::uint8_t status = r.u8();
  if (status > 2) throw ParseError("OCSP: bad status value");
  resp.status = static_cast<RevocationStatus>(status);
  resp.this_update = static_cast<std::int64_t>(r.u64());
  resp.next_update = static_cast<std::int64_t>(r.u64());
  std::uint8_t key_len = r.u8();
  resp.responder_key_id = r.str(key_len);
  r.expect_end("OCSP body");
  std::uint16_t sig_len = outer.u16();
  resp.signature = outer.bytes(sig_len);
  outer.expect_end("OCSP response");
  return resp;
}

bool verify_ocsp(const OcspResponse& response, const KeyRegistry& keys) {
  const crypto::KeyPair* key = keys.find(response.responder_key_id);
  if (key == nullptr) return false;
  Bytes body = response.signed_bytes();
  return crypto::verify(*key, BytesView(body.data(), body.size()),
                        BytesView(response.signature.data(), response.signature.size()));
}

void Crl::revoke(std::uint64_t serial, std::int64_t day) {
  revoked_.emplace(serial, day);
}

std::optional<std::int64_t> Crl::revoked_on(std::uint64_t serial) const {
  auto it = revoked_.find(serial);
  if (it == revoked_.end()) return std::nullopt;
  return it->second;
}

OcspResponse OcspResponder::respond(const Certificate& cert, std::int64_t day) const {
  OcspResponse resp;
  resp.serial = cert.serial;
  resp.this_update = day;
  resp.next_update = day + validity_days_;
  resp.responder_key_id = ca_->key().key_id;
  if (cert.authority_key_id != ca_->key().key_id) {
    resp.status = RevocationStatus::kUnknown;  // not our certificate
  } else if (crl_ != nullptr && crl_->is_revoked(cert.serial)) {
    resp.status = RevocationStatus::kRevoked;
  } else {
    resp.status = RevocationStatus::kGood;
  }
  Bytes body = resp.signed_bytes();
  resp.signature = crypto::sign(ca_->key(), BytesView(body.data(), body.size()));
  return resp;
}

}  // namespace iotls::x509

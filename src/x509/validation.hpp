// Certificate chain validation with the paper's verdict taxonomy (§5.3).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/health.hpp"
#include "x509/authority.hpp"
#include "x509/certificate.hpp"
#include "x509/revocation.hpp"
#include "x509/truststore.hpp"

namespace iotls::x509 {

/// Structural chain verdicts matching the categories the paper reports
/// (Tables 7/14/17): a chain is one of —
///   kOk              valid to a trust-store root present in the chain;
///   kOkRootOmitted   valid, root absent from the chain but found in a trust
///                    store (permitted by RFC 5246 §7.4.2);
///   kSelfSigned      the leaf has identical subject and issuer
///                    ("self-signed certificate" rows in Table 14);
///   kUntrustedRoot   the chain terminates at a self-signed root that is in
///                    no trust store ("private root CA" rows);
///   kIncompleteChain the topmost certificate's issuer is neither in the
///                    chain nor in any trust store (missing intermediates);
///   kBadSignature    some adjacent signature fails to verify;
///   kEmptyChain      the server presented no certificates.
enum class ChainStatus {
  kOk,
  kOkRootOmitted,
  kSelfSigned,
  kUntrustedRoot,
  kIncompleteChain,
  kBadSignature,
  kEmptyChain,
};

std::string chain_status_name(ChainStatus s);

/// Metric-name slug for a verdict (e.g. kUntrustedRoot -> "untrusted_root"),
/// used for the per-failure-class counters mirroring Table 7.
std::string chain_status_slug(ChainStatus s);

/// True for the two verdicts the paper counts as "valid chain".
inline bool chain_trusted(ChainStatus s) {
  return s == ChainStatus::kOk || s == ChainStatus::kOkRootOmitted;
}

/// Full validation outcome. Expiry and hostname problems are orthogonal to
/// the structural verdict (the paper reports them in separate tables), so
/// they are flags rather than statuses.
struct ValidationResult {
  ChainStatus status = ChainStatus::kEmptyChain;
  bool expired = false;         // any chain member expired at `now`
  bool not_yet_valid = false;   // any chain member not yet valid at `now`
  bool hostname_ok = false;     // leaf CN/SAN covers the requested host
  std::size_t chain_length = 0; // as served (excluding any store-found root)
  std::string detail;           // human-readable explanation

  /// "Fully clean": trusted chain, in validity window, hostname matches.
  bool clean() const {
    return chain_trusted(status) && !expired && !not_yet_valid && hostname_ok;
  }
};

/// Memoizing verification cache for bulk chain validation (§5.3).
///
/// A survey validates one chain per SNI, but distinct certificates are far
/// fewer than served chains: ~1,150 SNIs share ~840 leaves and a few dozen
/// intermediates and roots, so the same issuer→subject signature edge is
/// re-verified hundreds of times by a sequential walk. The cache memoizes
/// the boolean outcome of signature verification per distinct certificate
/// (and of OCSP staple verification per distinct staple) so each edge costs
/// one verification pass per survey instead of one per SNI.
///
/// Keying note: this codebase's signature scheme is a single keyed-hash
/// pass over the TBS bytes (crypto/signature.hpp), so keying the cache on a
/// TBS digest would cost as much as the verification it saves. Entries are
/// instead keyed on the certificate's cheap identity tuple — authority key
/// id, subject key id (SPKI), serial and validity window — the same
/// SPKI+serial identity CertIndex uses for leaf deduplication.
///
/// Thread safety: the table is mutex-striped into shards and the shard lock
/// is held across the verification itself, so each distinct certificate is
/// verified exactly once no matter how many workers race for it — the
/// `x509.cache.hit` / `x509.cache.miss` counter totals are identical at
/// every --jobs level.
class ValidationCache {
 public:
  /// Registers a liveness check `x509.validation_cache.<n>` for the export
  /// plane (memoized-entry count as the detail), removed again on
  /// destruction; byte growth is accounted to the `validation_cache` arena.
  ValidationCache();
  ~ValidationCache();

  /// Memoized signature check: does `cert` verify under its authority key?
  bool signature_ok(const Certificate& cert, const KeyRegistry& keys);

  /// Memoized OCSP staple verification (servers sharing a certificate tend
  /// to staple the same responder answer).
  bool ocsp_ok(const OcspResponse& response, const KeyRegistry& keys);

  /// Distinct certificates/staples memoized so far.
  std::size_t entries() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, bool> verdicts;
  };
  static constexpr std::size_t kShardCount = 16;

  Shard& shard_for(const std::string& key);
  void account_insert(const std::string& key);

  std::array<Shard, kShardCount> shards_;
  std::uint64_t accounted_bytes_ = 0;  // released from the arena on destruction
  std::mutex account_mu_;
  std::unique_ptr<obs::ScopedHealthCheck> health_;
};

/// Reorder an arbitrarily-ordered served chain into leaf-first issuer order
/// (misordered chains are a common server misconfiguration that validators
/// like Zeek and browsers tolerate). The leaf is the certificate covering
/// `hostname`, falling back to the one that signs no other member. Members
/// that do not link are appended unchanged, preserving incomplete-chain
/// semantics. Duplicates (the samsunghrm pattern) are preserved.
std::vector<Certificate> normalize_chain_order(std::vector<Certificate> chain,
                                               const std::string& hostname);

/// Validate a served chain (leaf first) for `hostname` at day `now`.
/// `keys` is the registry of issuer verification keys; `trust` is the union
/// of root stores (Mozilla+Apple+Microsoft analogue). When `cache` is
/// non-null, per-certificate signature checks are memoized through it; the
/// result is identical to the uncached path.
ValidationResult validate_chain(const std::vector<Certificate>& chain,
                                const std::string& hostname,
                                const TrustStoreSet& trust,
                                const KeyRegistry& keys, std::int64_t now,
                                ValidationCache* cache = nullptr);

/// Decode and validate a chain of encoded certificates (e.g. straight from a
/// TLS Certificate message). Malformed members yield kBadSignature with a
/// detail message rather than an exception.
ValidationResult validate_encoded_chain(const std::vector<Bytes>& encoded_chain,
                                        const std::string& hostname,
                                        const TrustStoreSet& trust,
                                        const KeyRegistry& keys,
                                        std::int64_t now,
                                        ValidationCache* cache = nullptr);

}  // namespace iotls::x509

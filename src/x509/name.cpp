#include "x509/name.hpp"

#include "util/strings.hpp"

namespace iotls::x509 {

std::string DistinguishedName::to_string() const {
  std::string out;
  auto add = [&out](const char* key, const std::string& value) {
    if (value.empty()) return;
    if (!out.empty()) out += ", ";
    out += key;
    out += '=';
    out += value;
  };
  add("CN", common_name);
  add("O", organization);
  add("C", country);
  return out;
}

bool hostname_matches(const std::string& pattern, const std::string& host) {
  std::string p = to_lower(pattern);
  std::string h = to_lower(host);
  if (p == h) return true;
  if (!starts_with(p, "*.")) return false;
  // "*.example.com" matches "a.example.com" but not "example.com" or
  // "a.b.example.com" (wildcard covers exactly one label).
  std::string suffix = p.substr(1);  // ".example.com"
  if (!ends_with(h, suffix)) return false;
  std::string label = h.substr(0, h.size() - suffix.size());
  return !label.empty() && label.find('.') == std::string::npos;
}

}  // namespace iotls::x509

// X.509 distinguished names (simplified RDN set).
#pragma once

#include <compare>
#include <string>

namespace iotls::x509 {

/// A distinguished name with the attributes our measurements use.
struct DistinguishedName {
  std::string common_name;    // CN
  std::string organization;   // O  — the issuer-organization key in Fig. 5
  std::string country;        // C

  /// "CN=appboot.netflix.com, O=Netflix, C=US"; empty attributes omitted.
  std::string to_string() const;

  friend bool operator==(const DistinguishedName&, const DistinguishedName&) = default;
  friend std::strong_ordering operator<=>(const DistinguishedName&,
                                          const DistinguishedName&) = default;
};

/// Hostname matching per RFC 6125 (simplified): exact case-insensitive match,
/// or a single leading "*." wildcard covering exactly one label.
bool hostname_matches(const std::string& pattern, const std::string& host);

}  // namespace iotls::x509

// Root trust stores (Mozilla / Apple / Microsoft analogues, §5.3).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "x509/certificate.hpp"

namespace iotls::x509 {

/// A named collection of trusted root certificates, keyed by subject key id.
class TrustStore {
 public:
  explicit TrustStore(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add_root(const Certificate& root);
  bool contains_key(const std::string& subject_key_id) const;

  /// Find a root by subject DN (used when a served chain omits its root, as
  /// RFC 5246 permits).
  const Certificate* find_by_subject(const DistinguishedName& subject) const;
  const Certificate* find_by_key(const std::string& subject_key_id) const;

  std::size_t size() const { return by_key_.size(); }
  std::vector<const Certificate*> roots() const;

 private:
  std::string name_;
  std::map<std::string, Certificate> by_key_;  // subject_key_id -> root
};

/// The union the paper validates against: Zeek's default Mozilla store
/// supplemented with Apple and Microsoft (§5.3). Lookups consult each store
/// in turn.
class TrustStoreSet {
 public:
  void add(TrustStore store) { stores_.push_back(std::move(store)); }

  bool contains_key(const std::string& subject_key_id) const;
  const Certificate* find_by_subject(const DistinguishedName& subject) const;
  const Certificate* find_by_key(const std::string& subject_key_id) const;

  const std::vector<TrustStore>& stores() const { return stores_; }

 private:
  std::vector<TrustStore> stores_;
};

}  // namespace iotls::x509

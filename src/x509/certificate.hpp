// Certificate model with a real TLV (DER-style) wire encoding.
//
// Substitution note (DESIGN.md §2): full ASN.1 DER is replaced by a compact
// tag–length–value encoding carrying the same certificate fields the paper's
// measurements read: subject/issuer, validity window, SAN, basicConstraints,
// key identifiers and the signature over the TBS bytes. Certificates travel
// on the wire inside real TLS Certificate messages, and every analysis
// consumes parsed-from-bytes certificates, not in-memory shortcuts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "x509/name.hpp"

namespace iotls::x509 {

/// A certificate. Validity timestamps are days since the Unix epoch.
struct Certificate {
  std::uint64_t serial = 0;
  DistinguishedName subject;
  DistinguishedName issuer;
  std::int64_t not_before = 0;
  std::int64_t not_after = 0;
  std::vector<std::string> san_dns;   // subjectAltName dNSName entries
  bool is_ca = false;                 // basicConstraints CA flag
  std::string subject_key_id;         // hex id of the subject's key
  std::string authority_key_id;       // hex id of the signing key
  Bytes signature;                    // over tbs_bytes()

  /// Encode the to-be-signed portion (everything except the signature).
  Bytes tbs_bytes() const;

  /// Encode the full certificate (TBS ‖ signature TLV).
  Bytes encode() const;

  /// Strict parse; throws ParseError on malformed input.
  static Certificate parse(BytesView encoded);

  /// Hex SHA-256 of encode() — the identity used for CT lookups and
  /// certificate-sharing analysis (§5.1).
  std::string fingerprint() const;

  /// Validity period in days (not_after - not_before).
  std::int64_t validity_days() const { return not_after - not_before; }

  /// Subject and issuer are identical (the paper's "self-signed" status).
  bool self_signed() const { return subject == issuer; }

  /// True if `host` matches the subject CN or any SAN dNSName
  /// (the paper's Common Name mismatch check, §5.3).
  bool matches_hostname(const std::string& host) const;

  /// Expiry check at a given day.
  bool expired_at(std::int64_t day) const { return day > not_after; }
  bool not_yet_valid_at(std::int64_t day) const { return day < not_before; }

  friend bool operator==(const Certificate&, const Certificate&) = default;
};

}  // namespace iotls::x509

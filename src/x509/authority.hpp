// Certificate authorities: key management and certificate issuance.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/signature.hpp"
#include "x509/certificate.hpp"

namespace iotls::x509 {

/// The paper's issuer taxonomy (§5.2): public-trust CAs have their root in
/// major trust stores; private CAs (usually device vendors) do not.
enum class CaKind { kPublicTrust, kPrivate };

/// Registry mapping key identifiers to verification keys. Conceptually the
/// table of issuer *public* keys a validator consults; with our keyed-hash
/// signature substitution it stores the issuing key pairs (see
/// crypto/signature.hpp).
class KeyRegistry {
 public:
  void register_key(const crypto::KeyPair& key);
  const crypto::KeyPair* find(const std::string& key_id) const;
  std::size_t size() const { return keys_.size(); }

 private:
  std::map<std::string, crypto::KeyPair> keys_;
};

/// Parameters for issuing one certificate.
struct IssueRequest {
  DistinguishedName subject;
  std::vector<std::string> san_dns;
  std::int64_t not_before = 0;
  std::int64_t not_after = 0;
  bool is_ca = false;
  /// Key pair of the subject; derived from subject CN when absent.
  const crypto::KeyPair* subject_key = nullptr;
};

/// A certificate authority: a named key holder that signs certificates.
/// Roots self-sign; intermediates are created via `subordinate()`.
class CertificateAuthority {
 public:
  /// Create a root CA. `org` becomes the issuer-organization string the
  /// Fig. 5 analysis groups by. The key pair derives deterministically from
  /// the CA's distinguished name, keeping the whole PKI reproducible.
  static CertificateAuthority make_root(const std::string& common_name,
                                        const std::string& org, CaKind kind,
                                        std::int64_t not_before,
                                        std::int64_t not_after);

  /// Create an intermediate signed by *this* CA. By default the child keeps
  /// this CA's organization; pass `org` for cross-signing arrangements
  /// (e.g. a "Netflix" intermediate under a public root, §5.4).
  CertificateAuthority subordinate(const std::string& common_name,
                                   std::int64_t not_before,
                                   std::int64_t not_after,
                                   const std::string& org = "") const;

  /// Issue an end-entity (or CA) certificate signed by this authority.
  Certificate issue(const IssueRequest& req) const;

  const Certificate& certificate() const { return cert_; }
  const crypto::KeyPair& key() const { return key_; }
  const DistinguishedName& name() const { return cert_.subject; }
  const std::string& organization() const { return cert_.subject.organization; }
  CaKind kind() const { return kind_; }

  /// Register this CA's verification key.
  void publish_key(KeyRegistry& registry) const { registry.register_key(key_); }

 private:
  CertificateAuthority() = default;

  Certificate cert_;
  crypto::KeyPair key_;
  CaKind kind_ = CaKind::kPrivate;
  mutable std::uint64_t next_serial_ = 1;
};

/// Derive the deterministic subject key pair for an end-entity name.
crypto::KeyPair subject_keypair(const std::string& common_name);

}  // namespace iotls::x509

#include "x509/certificate.hpp"

#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/reader.hpp"
#include "util/writer.hpp"

namespace iotls::x509 {

namespace {

// TLV tags for certificate fields. Each field encodes as
//   tag(u8) ‖ length(u16) ‖ value
// inside an outer TBS / certificate envelope.
enum Tag : std::uint8_t {
  kTagSerial = 0x01,
  kTagSubjectCn = 0x02,
  kTagSubjectOrg = 0x03,
  kTagSubjectCountry = 0x04,
  kTagIssuerCn = 0x05,
  kTagIssuerOrg = 0x06,
  kTagIssuerCountry = 0x07,
  kTagNotBefore = 0x08,
  kTagNotAfter = 0x09,
  kTagSanDns = 0x0a,       // repeated
  kTagIsCa = 0x0b,
  kTagSubjectKeyId = 0x0c,
  kTagAuthorityKeyId = 0x0d,
  kTagTbsEnvelope = 0x20,
  kTagSignature = 0x21,
};

void put_tlv(Writer& w, Tag tag, BytesView value) {
  if (value.size() > 0xffff) throw EncodeError("TLV value too long");
  w.u8(tag);
  w.u16(static_cast<std::uint16_t>(value.size()));
  w.raw(value);
}

void put_str(Writer& w, Tag tag, const std::string& s) {
  put_tlv(w, tag, BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void put_u64(Writer& w, Tag tag, std::uint64_t v) {
  Writer inner;
  inner.u64(v);
  put_tlv(w, tag, BytesView(inner.data().data(), inner.size()));
}

void put_i64(Writer& w, Tag tag, std::int64_t v) {
  put_u64(w, tag, static_cast<std::uint64_t>(v));
}

}  // namespace

Bytes Certificate::tbs_bytes() const {
  Writer body;
  put_u64(body, kTagSerial, serial);
  put_str(body, kTagSubjectCn, subject.common_name);
  put_str(body, kTagSubjectOrg, subject.organization);
  put_str(body, kTagSubjectCountry, subject.country);
  put_str(body, kTagIssuerCn, issuer.common_name);
  put_str(body, kTagIssuerOrg, issuer.organization);
  put_str(body, kTagIssuerCountry, issuer.country);
  put_i64(body, kTagNotBefore, not_before);
  put_i64(body, kTagNotAfter, not_after);
  for (const std::string& san : san_dns) put_str(body, kTagSanDns, san);
  Writer flag;
  flag.u8(is_ca ? 1 : 0);
  put_tlv(body, kTagIsCa, BytesView(flag.data().data(), flag.size()));
  put_str(body, kTagSubjectKeyId, subject_key_id);
  put_str(body, kTagAuthorityKeyId, authority_key_id);

  Writer outer;
  outer.u8(kTagTbsEnvelope);
  std::size_t len = outer.begin_length(3);
  outer.raw(BytesView(body.data().data(), body.size()));
  outer.end_length(len);
  return outer.take();
}

Bytes Certificate::encode() const {
  Writer w;
  Bytes tbs = tbs_bytes();
  w.raw(BytesView(tbs.data(), tbs.size()));
  w.u8(kTagSignature);
  std::size_t len = w.begin_length(3);
  w.raw(BytesView(signature.data(), signature.size()));
  w.end_length(len);
  return w.take();
}

Certificate Certificate::parse(BytesView encoded) {
  Reader outer(encoded);
  if (outer.u8() != kTagTbsEnvelope) throw ParseError("certificate: bad TBS tag");
  std::uint32_t tbs_len = outer.u24();
  Reader body(outer.view(tbs_len));

  Certificate cert;
  while (!body.empty()) {
    std::uint8_t tag = body.u8();
    std::uint16_t len = body.u16();
    Reader value(body.view(len));
    auto as_str = [&] { return value.str(len); };
    switch (tag) {
      case kTagSerial: cert.serial = value.u64(); break;
      case kTagSubjectCn: cert.subject.common_name = as_str(); break;
      case kTagSubjectOrg: cert.subject.organization = as_str(); break;
      case kTagSubjectCountry: cert.subject.country = as_str(); break;
      case kTagIssuerCn: cert.issuer.common_name = as_str(); break;
      case kTagIssuerOrg: cert.issuer.organization = as_str(); break;
      case kTagIssuerCountry: cert.issuer.country = as_str(); break;
      case kTagNotBefore: cert.not_before = static_cast<std::int64_t>(value.u64()); break;
      case kTagNotAfter: cert.not_after = static_cast<std::int64_t>(value.u64()); break;
      case kTagSanDns: cert.san_dns.push_back(as_str()); break;
      case kTagIsCa: cert.is_ca = value.u8() != 0; break;
      case kTagSubjectKeyId: cert.subject_key_id = as_str(); break;
      case kTagAuthorityKeyId: cert.authority_key_id = as_str(); break;
      default:
        throw ParseError("certificate: unknown TBS tag " + std::to_string(tag));
    }
  }

  if (outer.u8() != kTagSignature) throw ParseError("certificate: bad signature tag");
  std::uint32_t sig_len = outer.u24();
  cert.signature = outer.bytes(sig_len);
  outer.expect_end("certificate");
  return cert;
}

std::string Certificate::fingerprint() const {
  Bytes enc = encode();
  return crypto::sha256_hex(BytesView(enc.data(), enc.size()));
}

bool Certificate::matches_hostname(const std::string& host) const {
  if (!subject.common_name.empty() && hostname_matches(subject.common_name, host))
    return true;
  for (const std::string& san : san_dns) {
    if (hostname_matches(san, host)) return true;
  }
  return false;
}

}  // namespace iotls::x509

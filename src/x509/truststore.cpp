#include "x509/truststore.hpp"

namespace iotls::x509 {

void TrustStore::add_root(const Certificate& root) {
  by_key_[root.subject_key_id] = root;
}

bool TrustStore::contains_key(const std::string& subject_key_id) const {
  return by_key_.count(subject_key_id) > 0;
}

const Certificate* TrustStore::find_by_subject(const DistinguishedName& subject) const {
  for (const auto& [key_id, cert] : by_key_) {
    if (cert.subject == subject) return &cert;
  }
  return nullptr;
}

const Certificate* TrustStore::find_by_key(const std::string& subject_key_id) const {
  auto it = by_key_.find(subject_key_id);
  return it == by_key_.end() ? nullptr : &it->second;
}

std::vector<const Certificate*> TrustStore::roots() const {
  std::vector<const Certificate*> out;
  out.reserve(by_key_.size());
  for (const auto& [key_id, cert] : by_key_) out.push_back(&cert);
  return out;
}

bool TrustStoreSet::contains_key(const std::string& subject_key_id) const {
  for (const TrustStore& s : stores_) {
    if (s.contains_key(subject_key_id)) return true;
  }
  return false;
}

const Certificate* TrustStoreSet::find_by_subject(const DistinguishedName& subject) const {
  for (const TrustStore& s : stores_) {
    if (const Certificate* c = s.find_by_subject(subject)) return c;
  }
  return nullptr;
}

const Certificate* TrustStoreSet::find_by_key(const std::string& subject_key_id) const {
  for (const TrustStore& s : stores_) {
    if (const Certificate* c = s.find_by_key(subject_key_id)) return c;
  }
  return nullptr;
}

}  // namespace iotls::x509

// Revocation: CRLs and OCSP with stapling support.
//
// §5.3 highlights that vendor-signed certificates are effectively
// irrevocable ("the inability of public-not-trust issuers to quickly replace
// or rotate the certificate may open the door to attackers") and App. B.9
// measures which devices request OCSP staples. This module provides the
// server-side machinery those observations implicate: per-CA revocation
// lists, signed OCSP responses, and wire encoding so responses can be
// stapled into the TLS handshake (CertificateStatus message).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "x509/authority.hpp"
#include "x509/certificate.hpp"

namespace iotls::x509 {

enum class RevocationStatus { kGood, kRevoked, kUnknown };

std::string revocation_status_name(RevocationStatus s);

/// A signed OCSP response for one certificate serial.
struct OcspResponse {
  std::uint64_t serial = 0;
  RevocationStatus status = RevocationStatus::kUnknown;
  std::int64_t this_update = 0;   // day produced
  std::int64_t next_update = 0;   // stale afterwards
  std::string responder_key_id;   // key that signed it
  Bytes signature;                // over the TLV body

  Bytes signed_bytes() const;     // the TLV body covered by the signature
  Bytes encode() const;           // body ‖ signature (wire form for stapling)
  static OcspResponse parse(BytesView encoded);

  bool stale_at(std::int64_t day) const { return day > next_update; }

  friend bool operator==(const OcspResponse&, const OcspResponse&) = default;
};

/// Verify an OCSP response against the responder's key (found in `keys`).
bool verify_ocsp(const OcspResponse& response, const KeyRegistry& keys);

/// A certificate revocation list for one issuing CA.
class Crl {
 public:
  explicit Crl(const CertificateAuthority* issuer) : issuer_(issuer) {}

  void revoke(std::uint64_t serial, std::int64_t day);
  bool is_revoked(std::uint64_t serial) const { return revoked_.count(serial) > 0; }
  std::size_t size() const { return revoked_.size(); }
  std::optional<std::int64_t> revoked_on(std::uint64_t serial) const;

  const CertificateAuthority* issuer() const { return issuer_; }

 private:
  const CertificateAuthority* issuer_;
  std::map<std::uint64_t, std::int64_t> revoked_;  // serial -> revocation day
};

/// OCSP responder for one CA: answers status queries with signed responses.
class OcspResponder {
 public:
  /// `validity_days`: how long each response stays fresh (the paper's
  /// stapling discussion; short responses bound the attack window).
  OcspResponder(const CertificateAuthority* ca, Crl* crl,
                std::int64_t validity_days = 7)
      : ca_(ca), crl_(crl), validity_days_(validity_days) {}

  /// Produce a signed response for a certificate at `day`. Certificates not
  /// issued by this CA get kUnknown.
  OcspResponse respond(const Certificate& cert, std::int64_t day) const;

 private:
  const CertificateAuthority* ca_;
  Crl* crl_;
  std::int64_t validity_days_;
};

}  // namespace iotls::x509

// Certificate survey: the paper's §5 pipeline — probe every IoT server from
// three vantage points, validate the served chains against the union of
// trust stores, and audit Certificate Transparency coverage.
#include <cstdio>

#include "core/cert_dataset.hpp"
#include "core/chains.hpp"
#include "core/ct_validity.hpp"
#include "core/dataset.hpp"
#include "core/issuers.hpp"
#include "devicesim/fleet.hpp"
#include "util/dates.hpp"
#include "util/strings.hpp"

using namespace iotls;

int main() {
  auto corpus = corpus::LibraryCorpus::standard();
  auto universe = devicesim::ServerUniverse::standard();
  auto fleet = devicesim::generate_fleet({}, corpus, universe);
  auto client = core::ClientDataset::from_fleet(fleet);
  auto world = devicesim::build_world(universe);

  auto certs = core::CertDataset::collect(client, world);
  std::printf("probed %zu SNIs from 3 vantage points: %zu reachable, "
              "%zu distinct leaf certificates, %zu issuer organizations\n",
              certs.extracted_snis(), certs.reachable_snis(),
              certs.leaves().size(), certs.issuer_organizations().size());

  auto issuers = core::issuer_report(certs, world.issuer_is_public);
  std::printf("private-CA leaves: %s; self-signing vendors: %zu\n",
              fmt_percent(issuers.private_ratio).c_str(),
              issuers.self_signing_vendors.size());

  const std::int64_t now = days(2022, 4, 15);
  auto chains = core::validate_dataset(certs, world, now);
  std::printf("chain validation: %zu trusted / %zu validated; %zu expired; "
              "%zu CN mismatches\n",
              chains.trusted, chains.validated, chains.expired.size(),
              chains.cn_mismatches.size());
  for (const auto& row : chains.expired) {
    std::printf("  EXPIRED %-24s (%s) not_after=%s\n", row.sld.c_str(),
                row.issuer.c_str(), format_date(row.not_after).c_str());
  }
  for (const auto& v : chains.cn_mismatches) {
    std::printf("  CN MISMATCH %s (issuer %s)\n", v.sni.c_str(),
                v.leaf_issuer.c_str());
  }

  auto ct = core::ct_report(certs, world);
  std::printf("CT: %zu/%zu public leaves logged; %zu/%zu private leaves "
              "logged; vendor-signed validity >5y: %s\n",
              ct.public_leaves_in_ct, ct.public_leaves, ct.private_leaves_in_ct,
              ct.private_leaves,
              fmt_percent(ct.private_long_validity_ratio).c_str());

  auto geo = certs.geo_comparison();
  std::printf("geo consistency: %zu SNIs serve one certificate everywhere\n",
              geo.shared_all);
  return 0;
}

// Fleet audit: generate the crowdsourced fleet and run the paper's complete
// client-side analysis (§4) — library matching, customization metrics,
// vendor sharing, vulnerability assessment.
#include <cstdio>

#include "core/dataset.hpp"
#include "core/device_metrics.hpp"
#include "core/library_match.hpp"
#include "core/sharing.hpp"
#include "core/vendor_metrics.hpp"
#include "devicesim/fleet.hpp"
#include "util/dates.hpp"
#include "util/strings.hpp"

using namespace iotls;

int main() {
  auto corpus = corpus::LibraryCorpus::standard();
  auto universe = devicesim::ServerUniverse::standard();
  auto fleet = devicesim::generate_fleet({}, corpus, universe);
  std::printf("fleet: %zu devices, %zu users, %zu ClientHello events\n",
              fleet.devices.size(), fleet.users.size(), fleet.events.size());

  auto ds = core::ClientDataset::from_fleet(fleet);
  std::printf("parsed: %zu events (%zu dropped), %zu distinct fingerprints, "
              "%zu vendors, %zu SNIs\n\n",
              ds.events().size(), ds.dropped_events(), ds.fingerprints().size(),
              ds.vendors().size(), ds.snis().size());

  auto match = core::match_against_corpus(ds, corpus, days(2020, 8, 1));
  std::printf("library matches: %zu fingerprints (%s) against %zu libraries\n",
              match.matches.size(), fmt_percent(match.match_ratio()).c_str(),
              match.matched_libraries);

  auto degree = core::fingerprint_degree_distribution(ds);
  std::printf("vendor-unique fingerprints: %s of %zu\n",
              fmt_percent(degree.ratio1()).c_str(), degree.total);

  auto vuln = core::vulnerability_stats(ds);
  std::printf("fingerprints with vulnerable components: %zu (%s), 3DES in %zu\n",
              vuln.vulnerable_fps,
              fmt_percent(static_cast<double>(vuln.vulnerable_fps) /
                          vuln.total_fps).c_str(),
              vuln.by_tag.count("3DES") ? vuln.by_tag.at("3DES") : 0);

  auto doc = core::doc_vendor(ds);
  std::printf("vendors with DoC > 0.5: %s\n",
              fmt_percent(core::fraction_above(doc, 0.5)).c_str());

  auto ties = core::server_tied_fingerprints(ds, corpus);
  std::printf("server-tied fingerprints: %s of SNIs, %zu cross-vendor rows\n",
              fmt_percent(ties.tied_ratio()).c_str(), ties.cross_vendor_rows.size());

  std::printf("\nworst vendors by vulnerable share of their fingerprints:\n");
  auto flows = core::classify_fingerprints(ds);
  std::map<std::string, std::pair<std::size_t, std::size_t>> per_vendor;  // vuln/total
  for (const auto& fs : flows) {
    for (const std::string& vendor : ds.fp_vendors().at(fs.fp_key)) {
      auto& [v, t] = per_vendor[vendor];
      ++t;
      if (!fs.vulnerable_tags.empty()) ++v;
    }
  }
  std::vector<std::pair<double, std::string>> ranked;
  for (const auto& [vendor, counts] : per_vendor) {
    if (counts.second >= 5) {
      ranked.emplace_back(static_cast<double>(counts.first) / counts.second, vendor);
    }
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t i = 0; i < ranked.size() && i < 8; ++i) {
    std::printf("  %-18s %s vulnerable\n", ranked[i].second.c_str(),
                fmt_percent(ranked[i].first).c_str());
  }
  return 0;
}

// pcap fingerprinting: write a real libpcap capture to disk, read it back,
// reassemble the TCP flows, and fingerprint every ClientHello found — the
// workflow a researcher runs on lab captures (§6's datasets).
#include <cstdio>
#include <map>

#include "corpus/corpus.hpp"
#include "devicesim/stacks.hpp"
#include "pcap/flow.hpp"
#include "tls/fingerprint.hpp"
#include "tls/record.hpp"
#include "util/rng.hpp"

using namespace iotls;

int main() {
  auto corpus = corpus::LibraryCorpus::standard();
  Rng rng(2024);

  // Three lab devices with distinct stacks talking to their clouds.
  struct LabDevice {
    const char* name;
    devicesim::TlsStack stack;
    std::vector<std::string> snis;
  };
  std::vector<LabDevice> devices;
  const char* eras[] = {"openssl-1.0.2", "wolfssl-3.15", "mbedtls-2.7"};
  const char* names[] = {"camera", "plug", "thermostat"};
  for (int i = 0; i < 3; ++i) {
    LabDevice dev;
    dev.name = names[i];
    dev.stack.name = std::string("lab:") + names[i];
    Rng srng = rng.fork(names[i]);
    dev.stack.config = devicesim::mutate_era(corpus.era(eras[i]), srng, 0.5);
    dev.snis = {std::string(names[i]) + "-api.example-iot.com",
                std::string(names[i]) + "-ota.example-iot.com"};
    devices.push_back(std::move(dev));
  }

  // Capture each device's handshakes into Ethernet/IP/TCP frames.
  std::vector<pcap::PcapPacket> capture;
  std::uint32_t ts = 1650000000;
  int device_index = 0;
  for (const LabDevice& dev : devices) {
    for (const std::string& sni : dev.snis) {
      tls::ClientHello hello = devicesim::hello_from_stack(dev.stack, sni, 0);
      Bytes msg = hello.encode();
      Bytes records = tls::encode_records(tls::ContentType::kHandshake, 0x0301,
                                          BytesView(msg.data(), msg.size()));
      pcap::TcpSegment seg;
      seg.src_ip = pcap::Ipv4Addr::from_string("192.168.0." +
                                               std::to_string(20 + device_index));
      seg.dst_ip = pcap::Ipv4Addr::from_string("198.51.100.7");
      seg.src_port = static_cast<std::uint16_t>(49000 + device_index * 10);
      seg.dst_port = 443;
      seg.seq = 1;
      seg.flags = pcap::kPsh | pcap::kAck;
      // Split the flight across two segments to exercise reassembly.
      std::size_t half = records.size() / 2;
      seg.payload = Bytes(records.begin(), records.begin() + static_cast<std::ptrdiff_t>(half));
      pcap::PcapPacket p1{ts, 0, pcap::encode_frame(seg)};
      seg.seq = 1 + static_cast<std::uint32_t>(half);
      seg.payload = Bytes(records.begin() + static_cast<std::ptrdiff_t>(half), records.end());
      pcap::PcapPacket p2{ts, 500, pcap::encode_frame(seg)};
      // Deliver out of order: reassembly must fix it.
      capture.push_back(std::move(p2));
      capture.push_back(std::move(p1));
      ++ts;
      ++device_index;
    }
  }

  const char* path = "lab_capture.pcap";
  pcap::write_pcap_file(path, capture);
  std::printf("wrote %zu packets to %s\n", capture.size(), path);

  // Read back and fingerprint.
  auto reread = pcap::read_pcap_file(path);
  auto hellos = pcap::extract_client_hellos(reread);
  std::printf("recovered %zu ClientHellos from %zu packets\n\n", hellos.size(),
              reread.size());

  std::map<std::string, int> by_fp;
  for (const auto& captured : hellos) {
    tls::Fingerprint fp = tls::fingerprint_of(captured.hello);
    std::printf("%s -> %s  ja3=%s\n", captured.flow.src_ip.to_string().c_str(),
                captured.hello.sni().value_or("?").c_str(), fp.ja3().c_str());
    ++by_fp[fp.ja3()];
  }
  std::printf("\ndistinct fingerprints in capture: %zu (expected 3 — one per "
              "device stack)\n", by_fp.size());
  return 0;
}

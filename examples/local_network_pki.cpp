// Local-network PKI (§6.2): observe the TLS the smart-home devices speak to
// EACH OTHER — Echo's self-signed IP certificate, the Google Cast PKI with
// its 20+-year intermediates that appear in no public trust store or CT log.
#include <cstdio>

#include "core/case_studies.hpp"

using namespace iotls;

int main() {
  auto study = core::local_network_study();
  std::printf("local-network TLS observations (24h lab capture analogue):\n\n");
  for (const auto& obs : study.observations) {
    std::printf("%s -> %s (port %u, TLS %s)\n", obs.client.c_str(),
                obs.server.c_str(), obs.port,
                obs.tls_version == 0x0304 ? "1.3" : "1.2");
    if (!obs.certificates_visible) {
      std::printf("   certificates encrypted by TLS 1.3 — not observable\n\n");
      continue;
    }
    std::printf("   chain length %zu, leaf CN \"%s\"\n", obs.chain_length,
                obs.leaf_common_name.c_str());
    std::printf("   root \"%s\", validity %lld days (~%.0f years)\n",
                obs.root_common_name.c_str(),
                static_cast<long long>(obs.validity_days),
                static_cast<double>(obs.validity_days) / 365.0);
    std::printf("   root in client trust store: %s; in CT: %s\n\n",
                obs.root_in_client_store ? "yes" : "NO",
                obs.in_ct ? "yes" : "NO");
  }
  std::printf("intermediates valid 20+ years: %zu\n", study.long_validity_roots);
  return 0;
}

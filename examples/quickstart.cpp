// Quickstart: build a ClientHello, put it on the wire, parse it back,
// fingerprint it, classify its ciphersuites, and match it against the
// known-library corpus — the core loop of the paper's §4 pipeline.
#include <cstdio>

#include "corpus/corpus.hpp"
#include "tls/ciphersuite.hpp"
#include "tls/clienthello.hpp"
#include "tls/fingerprint.hpp"
#include "tls/record.hpp"

using namespace iotls;

int main() {
  // 1. A client configuration (this one mimics an OpenSSL 1.0.2 device).
  tls::ClientHello hello;
  hello.legacy_version = 0x0303;
  hello.cipher_suites = {0xc02c, 0xc02b, 0xc030, 0xc02f, 0x009f, 0x009e,
                         0xc024, 0xc023, 0xc028, 0xc027, 0xc00a, 0xc009,
                         0xc014, 0xc013, 0x009d, 0x009c, 0x003d, 0x003c,
                         0x0035, 0x002f, 0xc012, 0x000a, 0x0005, 0x0004};
  hello.extensions = {{10, {0x00, 0x04, 0x00, 0x17, 0x00, 0x18}},
                      {11, {0x01, 0x00}},
                      {13, {0x00, 0x04, 0x04, 0x01, 0x05, 0x01}},
                      {22, {}},
                      {23, {}},
                      {35, {}}};
  hello.set_sni("api.wyzecam.com");

  // 2. Onto the wire and back — everything downstream reads real bytes.
  Bytes handshake = hello.encode();
  Bytes wire = tls::encode_records(tls::ContentType::kHandshake, 0x0301,
                                   BytesView(handshake.data(), handshake.size()));
  std::printf("wire flight: %zu bytes\n", wire.size());

  auto records = tls::parse_records(BytesView(wire.data(), wire.size()));
  Bytes payload = tls::handshake_payload(records);
  auto msgs = tls::split_handshakes(BytesView(payload.data(), payload.size()));
  Bytes framed = tls::encode_handshake(msgs[0].type,
                                       BytesView(msgs[0].body.data(), msgs[0].body.size()));
  tls::ClientHello parsed = tls::ClientHello::parse(BytesView(framed.data(), framed.size()));
  std::printf("SNI: %s\n", parsed.sni().value_or("<none>").c_str());

  // 3. Fingerprint: the paper's {ciphersuites, extensions, version} tuple.
  tls::Fingerprint fp = tls::fingerprint_of(parsed);
  std::printf("fingerprint key: %s\n", fp.key().c_str());
  std::printf("ja3: %s\n", fp.ja3().c_str());

  // 4. Security classification (§4.2).
  auto level = tls::classify_suite_list(fp.cipher_suites);
  std::printf("security level: %s\n", tls::security_level_name(level).c_str());
  for (const std::string& tag : tls::list_vulnerable_components(fp.cipher_suites)) {
    std::printf("  vulnerable component: %s\n", tag.c_str());
  }

  // 5. Library matching (§4.1).
  auto corpus = corpus::LibraryCorpus::standard();
  if (const corpus::KnownLibrary* match = corpus.best_match(fp)) {
    std::printf("matched library: %s (released day %lld)\n", match->version.c_str(),
                static_cast<long long>(match->release_day));
  } else {
    std::printf("no exact library match — a customized stack (like ~97%% of "
                "the paper's devices)\n");
  }
  return 0;
}

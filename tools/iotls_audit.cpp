// iotls_audit — run the §4 client-side analysis over an exported dataset.
//
// Usage:
//   iotls_audit [--jobs=N] [--stats[=json]] [--certs] [--report=NAME]
//               events.csv devices.csv
//   iotls_audit --snapshot=FILE [--jobs=N] [--stats[=json]] [--certs]
//               [--report=NAME]
//   iotls_audit --export-snapshot=OUT [--jobs=N] events.csv devices.csv
//
// `--report=NAME` prints one stream report document (see
// src/stream/reports.hpp for names) as a single JSON line on stdout and
// exits — computed through the same single-epoch streaming fold iotlsd
// uses, so the output is byte-comparable against the daemon's
// /report/NAME body after any epoch split of the same events.
//
// `--snapshot=FILE` reads a columnar .iotlsnap container (docs/SNAPSHOT.md)
// instead of the CSVs. With `--report=`, events stream through the fold in
// chunks and parsed rows are not retained, so resident memory stays
// O(distinct fingerprints) — the fleet-scale path. Reports are
// byte-identical to the CSV run over the same dataset at every --jobs
// level.
//
// `--export-snapshot=OUT` converts the CSVs into a snapshot at OUT
// (verifying every section checksum after the write) and exits.
//
// `--jobs=N` parses ClientHellos, runs corpus matching — and, with
// `--certs`, probes/validates the server-side dataset — on N worker
// threads (0 = hardware concurrency); results are identical to --jobs=1.
//
// `--fault-spec=SPEC` (with --report=) applies a declarative fault schedule
// to the probe path (net::FaultSpec syntax, e.g. drop=0.2) — reports stay
// byte-identical between CSV and snapshot inputs under injection because
// faults are seeded per (SNI, vantage, attempt), not per probe order.
//
// `--certs` appends the §5 server-side pipeline: every SNI the dataset's
// devices contacted is probed against the standard simulated internet, the
// served chains are validated (signature verification memoized per
// distinct certificate), and the issuer/CT headline numbers are printed.
//
// Consumes the anonymized CSVs produced by devicesim/export (the format of
// the paper's artifact release) and prints the headline client-side
// measurements: fingerprint universe, degree distribution, customization,
// vulnerability profile and library match rate. Works without the fleet
// generator — any dataset in the released format can be analysed.
//
// Observability: IOTLS_LOG_LEVEL controls structured logs on stderr (e.g.
// debug logs each dropped event with its reason); `--stats` appends stage
// timings and the metric registry, `--stats=json` emits them as one JSON
// document on stderr. `--serve=PORT` exposes the live export plane
// (/metrics, /stats, /healthz, /readyz, /trace) during the run (with
// `--serve-linger[=MS]` it stays up afterwards); `--trace-out=FILE` writes
// the run's nested spans as Chrome trace-event JSON for Perfetto.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "core/cert_dataset.hpp"
#include "core/chains.hpp"
#include "core/ct_validity.hpp"
#include "core/dataset.hpp"
#include "core/issuers.hpp"
#include "core/library_match.hpp"
#include "core/vendor_metrics.hpp"
#include "devicesim/export.hpp"
#include "devicesim/scenario.hpp"
#include "fleetio/snapshot.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs_cli.hpp"
#include "report/obs_report.hpp"
#include "stream/ingest.hpp"
#include "stream/reports.hpp"
#include "stream/source.hpp"
#include "util/dates.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "x509/validation.hpp"

using namespace iotls;

namespace {

enum class StatsMode { kOff, kText, kJson };

constexpr const char* kUsage =
    "usage: iotls_audit [--jobs=N] [--stats[=json]] [--certs]\n"
    "                   [--report=NAME] [--fault-spec=SPEC] [--serve=PORT]\n"
    "                   [--serve-linger[=MS]] [--trace-out=FILE]\n"
    "                   events.csv devices.csv\n"
    "       iotls_audit --snapshot=FILE [--jobs=N] [--stats[=json]]\n"
    "                   [--certs] [--report=NAME] [--fault-spec=SPEC]\n"
    "       iotls_audit --export-snapshot=OUT [--jobs=N] events.csv devices.csv\n";

std::string slurp(const char* path) {
  std::ifstream f(path);
  if (!f) throw ParseError(std::string("cannot open ") + path);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  StatsMode stats = StatsMode::kOff;
  int jobs = 1;
  bool certs_mode = false;
  net::FaultSpec fault;
  std::string report_name;
  std::string snapshot_path;
  std::string export_snapshot_path;
  tools::ObsCli obs_cli;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    bool bad = false;
    if (obs_cli.parse(argv[i], &bad)) {
      if (bad) return 2;
    }
    else if (std::strcmp(argv[i], "--stats") == 0) stats = StatsMode::kText;
    else if (std::strcmp(argv[i], "--stats=json") == 0) stats = StatsMode::kJson;
    else if (std::strcmp(argv[i], "--certs") == 0) certs_mode = true;
    else if (std::strncmp(argv[i], "--report=", 9) == 0) report_name = argv[i] + 9;
    else if (std::strncmp(argv[i], "--snapshot=", 11) == 0)
      snapshot_path = argv[i] + 11;
    else if (std::strncmp(argv[i], "--export-snapshot=", 18) == 0)
      export_snapshot_path = argv[i] + 18;
    else if (std::strncmp(argv[i], "--fault-spec=", 13) == 0) {
      try {
        fault = net::FaultSpec::parse(argv[i] + 13);
      } catch (const ParseError& e) {
        std::fprintf(stderr, "--fault-spec: %s\n", e.what());
        return 2;
      }
    }
    else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(argv[i] + 7, &end, 10);
      if (end == argv[i] + 7 || *end != '\0') {
        std::fprintf(stderr, "--jobs= wants a non-negative integer, got '%s'\n",
                     argv[i] + 7);
        return 2;
      }
      jobs = static_cast<int>(n);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    } else paths.push_back(argv[i]);
  }
  std::size_t want_paths = snapshot_path.empty() ? 2 : 0;
  if (paths.size() != want_paths ||
      (!snapshot_path.empty() && !export_snapshot_path.empty())) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  if (!obs_cli.start()) return 2;

  devicesim::FleetDataset fleet;
  std::optional<fleetio::SnapshotReader> snap;
  try {
    if (!snapshot_path.empty()) {
      snap = fleetio::SnapshotReader::open(snapshot_path);
    } else {
      fleet = devicesim::import_events_csv(slurp(paths[0]), slurp(paths[1]));
    }
  } catch (const ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (!export_snapshot_path.empty()) {
    // CSV -> snapshot converter: write, then re-open and checksum every
    // section so a converted file is known-good before anything trusts it.
    try {
      fleetio::write_snapshot(fleet, export_snapshot_path);
      auto written = fleetio::SnapshotReader::open(export_snapshot_path);
      written.verify_checksums();
      std::printf("snapshot: wrote %s (%zu bytes): %u devices, %u users, "
                  "%llu events, %u strings\n",
                  export_snapshot_path.c_str(), written.file_size(),
                  written.device_count(), written.user_count(),
                  static_cast<unsigned long long>(written.event_count()),
                  written.string_count());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::fflush(stdout);
    obs_cli.finish();
    return 0;
  }

  if (!report_name.empty()) {
    // Batch mode as the degenerate streaming case: one epoch holding the
    // whole event stream, rendered by the exact code iotlsd serves. Every
    // stream report is index/CertDataset-backed, so parsed rows need not
    // be retained — with a snapshot input the events stream through in
    // chunks and resident memory stays O(distinct fingerprints).
    bool server_side = report_name == "certs" || report_name == "chains" ||
                       report_name == "issuers" || report_name == "ct" ||
                       report_name == "stacks" || report_name == "dualstack";
    stream::IngestConfig config;
    config.jobs = jobs;
    config.certs = certs_mode || server_side;
    config.fault = fault;
    config.retain_events = false;
    std::unique_ptr<stream::StreamIngest> ingest;
    if (snap.has_value()) {
      ingest = std::make_unique<stream::StreamIngest>(snap->devices(), config);
      stream::SnapshotSource source(std::move(*snap),
                                    stream::SnapshotSource::kDefaultChunkEvents,
                                    jobs);
      bool folded = false;
      while (auto batch = source.next_epoch()) {
        ingest->fold_epoch(batch->events);
        folded = true;
      }
      if (!folded) ingest->fold_epoch({});  // empty dataset still reports
    } else {
      ingest = std::make_unique<stream::StreamIngest>(fleet.devices, config);
      ingest->fold_epoch(fleet.events);
    }
    auto doc = stream::render_report(report_name, *ingest);
    if (!doc.has_value()) {
      std::fprintf(stderr, "unknown report: %s (known:", report_name.c_str());
      for (const std::string& name : stream::report_names()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr, ")\n");
      return 2;
    }
    std::printf("%s\n", doc->dump().c_str());
    std::fflush(stdout);
    if (stats == StatsMode::kText) {
      std::fprintf(stderr, "\n%s",
                   report::stats_text(obs::metrics(), obs::tracer()).c_str());
    } else if (stats == StatsMode::kJson) {
      std::fprintf(stderr, "%s\n",
                   report::stats_json(obs::metrics(), obs::tracer()).c_str());
    }
    obs_cli.finish();
    return 0;
  }

  if (fault.any()) {
    // Fault injection runs through the streaming probe path only.
    std::fprintf(stderr, "--fault-spec requires --report=NAME\n");
    return 2;
  }
  if (snap.has_value()) {
    // Headline mode needs the event-iterating analyses; materialize fully.
    fleet = snap->load(jobs);
    snap.reset();
  }

  auto ds = core::ClientDataset::from_fleet(fleet, {}, jobs);
  std::printf("dataset: %zu devices, %zu users, %zu events (%zu undecodable)\n",
              fleet.devices.size(), fleet.users.size(), ds.events().size(),
              ds.dropped_events());
  const core::DropCounts& drops = ds.drop_counts();
  if (drops.total() > 0) {
    std::printf("dropped: %zu unknown device, %zu no ClientHello, %zu parse error\n",
                drops.unknown_device, drops.no_client_hello, drops.parse_error);
  }
  std::printf("distinct fingerprints: %zu across %zu vendors and %zu SNIs\n\n",
              ds.fingerprints().size(), ds.vendors().size(), ds.snis().size());

  auto degree = core::fingerprint_degree_distribution(ds);
  std::printf("fingerprint degree: %s single-vendor, %zu shared by 2, "
              "%zu by 3-5, %zu by >5\n",
              fmt_percent(degree.ratio1()).c_str(), degree.degree2,
              degree.degree3to5, degree.degree_gt5);

  auto doc = core::doc_vendor(ds);
  std::printf("vendors with a unique fingerprint: %s; with DoC > 0.5: %s\n",
              fmt_percent(core::fraction_with_unique(doc)).c_str(),
              fmt_percent(core::fraction_above(doc, 0.5)).c_str());

  auto vuln = core::vulnerability_stats(ds);
  std::printf("vulnerable fingerprints: %zu (%s); 3DES in %zu; "
              "ANON/EXPORT/NULL in %zu (devices: %zu, vendors: %zu)\n",
              vuln.vulnerable_fps,
              fmt_percent(vuln.total_fps ? double(vuln.vulnerable_fps) /
                                               vuln.total_fps : 0).c_str(),
              vuln.by_tag.count("3DES") ? vuln.by_tag.at("3DES") : 0,
              vuln.severe_fps, vuln.severe_devices, vuln.severe_vendors);

  auto corpus = corpus::LibraryCorpus::standard();
  auto match = core::match_against_corpus(ds, corpus, days(2020, 8, 1), jobs);
  std::printf("known-library matches: %zu fingerprints (%s), "
              "%zu libraries (%zu unsupported)\n",
              match.matches.size(), fmt_percent(match.match_ratio()).c_str(),
              match.matched_libraries, match.unsupported_libraries);

  if (certs_mode) {
    auto universe = devicesim::ServerUniverse::standard();
    devicesim::SimWorld world = devicesim::build_world(universe);
    x509::ValidationCache vcache;
    auto certs = core::CertDataset::collect(ds, world, 1, jobs, &vcache);
    std::printf("\ncertificates: %zu SNIs extracted, %zu reachable, "
                "%zu distinct leaves, %zu issuer organizations\n",
                certs.extracted_snis(), certs.reachable_snis(),
                certs.leaves().size(), certs.issuer_organizations().size());

    auto chains = core::validate_dataset(certs, world, days(2022, 4, 15), jobs,
                                         &vcache);
    std::printf("chain validation: %zu validated, %zu trusted, "
                "%zu failure rows (%zu private-root, %zu self-signed), "
                "%zu expired, %zu CN mismatches\n",
                chains.validated, chains.trusted, chains.failure_rows.size(),
                chains.private_root_rows.size(), chains.self_signed_rows.size(),
                chains.expired.size(), chains.cn_mismatches.size());

    auto issuers = core::issuer_report(certs, world.issuer_is_public);
    std::printf("issuers: %zu organizations, %zu private leaves (%s); "
                "%zu public-only vendors, %zu self-signing vendors\n",
                issuers.issuer_organizations, issuers.private_leaves,
                fmt_percent(issuers.private_ratio).c_str(),
                issuers.public_only_vendors.size(),
                issuers.self_signing_vendors.size());

    auto ct = core::ct_report(certs, world, jobs);
    std::printf("ct: %zu/%zu public leaves logged (%zu anomalies), "
                "%zu private leaves (%zu logged)\n",
                ct.public_leaves_in_ct, ct.public_leaves,
                ct.public_not_logged.size(), ct.private_leaves,
                ct.private_leaves_in_ct);
  }

  if (stats == StatsMode::kText) {
    std::fprintf(stderr, "\n%s",
                 report::stats_text(obs::metrics(), obs::tracer()).c_str());
  } else if (stats == StatsMode::kJson) {
    std::fprintf(stderr, "%s\n",
                 report::stats_json(obs::metrics(), obs::tracer()).c_str());
  }
  std::fflush(stdout);
  obs_cli.finish();
  return 0;
}

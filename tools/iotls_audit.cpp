// iotls_audit — run the §4 client-side analysis over an exported dataset.
//
// Usage:
//   iotls_audit [--jobs=N] [--stats[=json]] events.csv devices.csv
//
// `--jobs=N` parses ClientHellos and runs corpus matching on N worker
// threads (0 = hardware concurrency); results are identical to --jobs=1.
//
// Consumes the anonymized CSVs produced by devicesim/export (the format of
// the paper's artifact release) and prints the headline client-side
// measurements: fingerprint universe, degree distribution, customization,
// vulnerability profile and library match rate. Works without the fleet
// generator — any dataset in the released format can be analysed.
//
// Observability: IOTLS_LOG_LEVEL controls structured logs on stderr (e.g.
// debug logs each dropped event with its reason); `--stats` appends stage
// timings and the metric registry, `--stats=json` emits them as one JSON
// document on stderr.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/dataset.hpp"
#include "core/library_match.hpp"
#include "core/vendor_metrics.hpp"
#include "devicesim/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/obs_report.hpp"
#include "util/dates.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

using namespace iotls;

namespace {

enum class StatsMode { kOff, kText, kJson };

std::string slurp(const char* path) {
  std::ifstream f(path);
  if (!f) throw ParseError(std::string("cannot open ") + path);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  StatsMode stats = StatsMode::kOff;
  int jobs = 1;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) stats = StatsMode::kText;
    else if (std::strcmp(argv[i], "--stats=json") == 0) stats = StatsMode::kJson;
    else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(argv[i] + 7, &end, 10);
      if (end == argv[i] + 7 || *end != '\0') {
        std::fprintf(stderr, "--jobs= wants a non-negative integer, got '%s'\n",
                     argv[i] + 7);
        return 2;
      }
      jobs = static_cast<int>(n);
    } else paths.push_back(argv[i]);
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: iotls_audit [--jobs=N] [--stats[=json]] events.csv devices.csv\n");
    return 2;
  }

  devicesim::FleetDataset fleet;
  try {
    fleet = devicesim::import_events_csv(slurp(paths[0]), slurp(paths[1]));
  } catch (const ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  auto ds = core::ClientDataset::from_fleet(fleet, {}, jobs);
  std::printf("dataset: %zu devices, %zu users, %zu events (%zu undecodable)\n",
              fleet.devices.size(), fleet.users.size(), ds.events().size(),
              ds.dropped_events());
  const core::DropCounts& drops = ds.drop_counts();
  if (drops.total() > 0) {
    std::printf("dropped: %zu unknown device, %zu no ClientHello, %zu parse error\n",
                drops.unknown_device, drops.no_client_hello, drops.parse_error);
  }
  std::printf("distinct fingerprints: %zu across %zu vendors and %zu SNIs\n\n",
              ds.fingerprints().size(), ds.vendors().size(), ds.snis().size());

  auto degree = core::fingerprint_degree_distribution(ds);
  std::printf("fingerprint degree: %s single-vendor, %zu shared by 2, "
              "%zu by 3-5, %zu by >5\n",
              fmt_percent(degree.ratio1()).c_str(), degree.degree2,
              degree.degree3to5, degree.degree_gt5);

  auto doc = core::doc_vendor(ds);
  std::printf("vendors with a unique fingerprint: %s; with DoC > 0.5: %s\n",
              fmt_percent(core::fraction_with_unique(doc)).c_str(),
              fmt_percent(core::fraction_above(doc, 0.5)).c_str());

  auto vuln = core::vulnerability_stats(ds);
  std::printf("vulnerable fingerprints: %zu (%s); 3DES in %zu; "
              "ANON/EXPORT/NULL in %zu (devices: %zu, vendors: %zu)\n",
              vuln.vulnerable_fps,
              fmt_percent(vuln.total_fps ? double(vuln.vulnerable_fps) /
                                               vuln.total_fps : 0).c_str(),
              vuln.by_tag.count("3DES") ? vuln.by_tag.at("3DES") : 0,
              vuln.severe_fps, vuln.severe_devices, vuln.severe_vendors);

  auto corpus = corpus::LibraryCorpus::standard();
  auto match = core::match_against_corpus(ds, corpus, days(2020, 8, 1), jobs);
  std::printf("known-library matches: %zu fingerprints (%s), "
              "%zu libraries (%zu unsupported)\n",
              match.matches.size(), fmt_percent(match.match_ratio()).c_str(),
              match.matched_libraries, match.unsupported_libraries);

  if (stats == StatsMode::kText) {
    std::fprintf(stderr, "\n%s",
                 report::stats_text(obs::metrics(), obs::tracer()).c_str());
  } else if (stats == StatsMode::kJson) {
    std::fprintf(stderr, "%s\n",
                 report::stats_json(obs::metrics(), obs::tracer()).c_str());
  }
  return 0;
}

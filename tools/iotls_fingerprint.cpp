// iotls_fingerprint — fingerprint every TLS ClientHello in a pcap file.
//
// Usage:
//   iotls_fingerprint [--csv] [--match] capture.pcap [more.pcap ...]
//
// Prints one line per recovered ClientHello: source, SNI, fingerprint key,
// JA3 digest and ciphersuite security classification. With --match, also
// attributes the fingerprint to a known TLS library build when it matches
// the corpus exactly (§4.1).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "pcap/flow.hpp"
#include "tls/ciphersuite.hpp"
#include "tls/fingerprint.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

using namespace iotls;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: iotls_fingerprint [--csv] [--match] capture.pcap ...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false, match = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    else if (std::strcmp(argv[i], "--match") == 0) match = true;
    else if (argv[i][0] == '-') return usage();
    else paths.emplace_back(argv[i]);
  }
  if (paths.empty()) return usage();

  corpus::LibraryCorpus corpus_db =
      match ? corpus::LibraryCorpus::standard() : corpus::LibraryCorpus{};

  if (csv) {
    std::printf("file,src,sni,ja3,security,library\n");
  }

  int exit_code = 0;
  for (const std::string& path : paths) {
    std::vector<pcap::PcapPacket> packets;
    try {
      packets = pcap::read_pcap_file(path);
    } catch (const ParseError& e) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
      exit_code = 1;
      continue;
    }
    auto hellos = pcap::extract_client_hellos(packets);
    if (!csv) {
      std::printf("%s: %zu packets, %zu ClientHellos\n", path.c_str(),
                  packets.size(), hellos.size());
    }
    for (const pcap::CapturedClientHello& captured : hellos) {
      tls::Fingerprint fp = tls::fingerprint_of(captured.hello);
      std::string security = tls::security_level_name(
          tls::classify_suite_list(fp.cipher_suites));
      std::string library;
      if (match) {
        if (const corpus::KnownLibrary* lib = corpus_db.best_match(fp)) {
          library = lib->version;
        }
      }
      std::string sni = captured.hello.sni().value_or("-");
      if (csv) {
        std::printf("%s,%s,%s,%s,%s,%s\n", path.c_str(),
                    captured.flow.src_ip.to_string().c_str(), sni.c_str(),
                    fp.ja3().c_str(), security.c_str(), library.c_str());
      } else {
        std::printf("  %-15s -> %-35s ja3=%s  [%s]%s%s\n",
                    captured.flow.src_ip.to_string().c_str(), sni.c_str(),
                    fp.ja3().c_str(), security.c_str(),
                    library.empty() ? "" : "  lib=", library.c_str());
      }
    }
  }
  return exit_code;
}

// iotls_fingerprint — fingerprint every TLS ClientHello in a pcap file.
//
// Usage:
//   iotls_fingerprint [--csv] [--match] [--stats[=json]] capture.pcap ...
//   iotls_fingerprint --snapshot=FILE [--csv] [--match] [--stats[=json]]
//
// Prints one line per recovered ClientHello: source, SNI, fingerprint key,
// JA3 digest and ciphersuite security classification. With --match, also
// attributes the fingerprint to a known TLS library build when it matches
// the corpus exactly (§4.1).
//
// `--snapshot=FILE` fingerprints a columnar .iotlsnap fleet container
// (docs/SNAPSHOT.md) instead of pcaps: events are materialized from the
// mapped columns chunk by chunk (the source column is the device id), so a
// fleet-scale snapshot streams through without ever holding the full event
// vector.
//
// Observability: IOTLS_LOG_LEVEL controls structured logs on stderr;
// `--stats` appends stage timings and counters (frames, flows, hellos,
// corpus hits/misses) to stderr, `--stats=json` emits them as one JSON
// document on stderr (stdout stays parseable --csv output). `--serve=PORT`
// exposes the live export plane (/metrics, /stats, /healthz, /readyz,
// /trace) while captures are processed (with `--serve-linger[=MS]` it stays
// up afterwards); `--trace-out=FILE` writes the run's nested spans as
// Chrome trace-event JSON for Perfetto.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "fleetio/snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs_cli.hpp"
#include "pcap/flow.hpp"
#include "report/obs_report.hpp"
#include "tls/ciphersuite.hpp"
#include "tls/fingerprint.hpp"
#include "tls/record.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

using namespace iotls;

namespace {

enum class StatsMode { kOff, kText, kJson };

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: iotls_fingerprint [--csv] [--match] [--stats[=json]]\n"
               "                         [--serve=PORT] [--serve-linger[=MS]]\n"
               "                         [--trace-out=FILE] capture.pcap ...\n"
               "       iotls_fingerprint --snapshot=FILE [--csv] [--match]\n"
               "                         [--stats[=json]]\n");
}

/// The first ClientHello in an event's record-layer bytes, or nullopt when
/// the bytes carry none (the snapshot path's analogue of flow reassembly).
std::optional<tls::ClientHello> hello_from_wire(BytesView wire) {
  try {
    auto records = tls::parse_records(wire);
    Bytes payload = tls::handshake_payload(records);
    auto msgs =
        tls::split_handshakes(BytesView(payload.data(), payload.size()));
    for (const auto& m : msgs) {
      if (m.type != tls::HandshakeType::kClientHello) continue;
      Bytes framed =
          tls::encode_handshake(m.type, BytesView(m.body.data(), m.body.size()));
      return tls::ClientHello::parse(BytesView(framed.data(), framed.size()));
    }
  } catch (const ParseError&) {
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false, match = false;
  StatsMode stats = StatsMode::kOff;
  std::string snapshot_path;
  tools::ObsCli obs_cli;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    bool bad = false;
    if (obs_cli.parse(argv[i], &bad)) {
      if (bad) return 2;
    }
    else if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    else if (std::strcmp(argv[i], "--match") == 0) match = true;
    else if (std::strcmp(argv[i], "--stats") == 0) stats = StatsMode::kText;
    else if (std::strcmp(argv[i], "--stats=json") == 0) stats = StatsMode::kJson;
    else if (std::strncmp(argv[i], "--snapshot=", 11) == 0)
      snapshot_path = argv[i] + 11;
    else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(stderr);
      return 2;
    }
    else paths.emplace_back(argv[i]);
  }
  if (paths.empty() == snapshot_path.empty()) {
    usage(stderr);
    std::fprintf(stderr, "example: iotls_fingerprint --match capture.pcap\n");
    return 2;
  }
  if (!obs_cli.start()) return 2;

  corpus::LibraryCorpus corpus_db =
      match ? corpus::LibraryCorpus::standard() : corpus::LibraryCorpus{};

  if (csv) {
    std::printf("file,src,sni,ja3,security,library\n");
  }

  int exit_code = 0;
  auto emit = [&](const std::string& file, const std::string& src,
                  const tls::ClientHello& hello) {
    tls::Fingerprint fp = tls::fingerprint_of(hello);
    std::string security = tls::security_level_name(
        tls::classify_suite_list(fp.cipher_suites));
    std::string library;
    if (match) {
      if (const corpus::KnownLibrary* lib = corpus_db.best_match(fp)) {
        obs::metrics().counter("corpus.match.hit").inc();
        library = lib->version;
      } else {
        obs::metrics().counter("corpus.match.miss").inc();
      }
    }
    std::string sni = hello.sni().value_or("-");
    if (csv) {
      std::printf("%s,%s,%s,%s,%s,%s\n", file.c_str(), src.c_str(),
                  sni.c_str(), fp.ja3().c_str(), security.c_str(),
                  library.c_str());
    } else {
      std::printf("  %-15s -> %-35s ja3=%s  [%s]%s%s\n", src.c_str(),
                  sni.c_str(), fp.ja3().c_str(), security.c_str(),
                  library.empty() ? "" : "  lib=", library.c_str());
    }
  };

  for (const std::string& path : paths) {
    std::vector<pcap::PcapPacket> packets;
    try {
      packets = pcap::read_pcap_file(path);
    } catch (const ParseError& e) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
      exit_code = 1;
      continue;
    }
    auto hellos = pcap::extract_client_hellos(packets);
    if (!csv) {
      std::printf("%s: %zu packets, %zu ClientHellos\n", path.c_str(),
                  packets.size(), hellos.size());
    }
    auto fp_span = obs::tracer().span("fingerprint.extract");
    auto match_span = obs::tracer().span("corpus.match");
    for (const pcap::CapturedClientHello& captured : hellos) {
      fp_span.add_items();
      if (match) match_span.add_items();
      emit(path, captured.flow.src_ip.to_string(), captured.hello);
    }
  }

  if (!snapshot_path.empty()) {
    constexpr std::uint64_t kChunk = 65536;
    try {
      auto snap = fleetio::SnapshotReader::open(snapshot_path);
      if (!csv) {
        std::printf("%s: %llu events, %u devices\n", snapshot_path.c_str(),
                    static_cast<unsigned long long>(snap.event_count()),
                    snap.device_count());
      }
      auto fp_span = obs::tracer().span("fingerprint.extract");
      auto match_span = obs::tracer().span("corpus.match");
      for (std::uint64_t begin = 0; begin < snap.event_count();
           begin += kChunk) {
        std::uint64_t end = std::min(snap.event_count(), begin + kChunk);
        for (const devicesim::ClientHelloEvent& ev : snap.events(begin, end)) {
          fp_span.add_items();
          auto hello =
              hello_from_wire(BytesView(ev.wire.data(), ev.wire.size()));
          if (!hello.has_value()) {
            fp_span.fail("no_client_hello");
            continue;
          }
          if (match) match_span.add_items();
          emit(snapshot_path, ev.device_id, *hello);
        }
      }
    } catch (const ParseError& e) {
      std::fprintf(stderr, "%s: %s\n", snapshot_path.c_str(), e.what());
      exit_code = 1;
    }
  }

  if (stats == StatsMode::kText) {
    std::fprintf(stderr, "\n%s",
                 report::stats_text(obs::metrics(), obs::tracer()).c_str());
  } else if (stats == StatsMode::kJson) {
    std::fprintf(stderr, "%s\n",
                 report::stats_json(obs::metrics(), obs::tracer()).c_str());
  }
  std::fflush(stdout);
  obs_cli.finish();
  return exit_code;
}

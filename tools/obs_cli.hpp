// Shared observability CLI surface for the iotls_* tools.
//
// Every tool accepts the same three flags:
//   --serve=PORT        start the embedded export plane on 127.0.0.1:PORT
//                       (0 = ephemeral; the chosen port is printed to stderr
//                       as "obs: serving on 127.0.0.1:PORT" so scripts can
//                       parse it)
//   --serve-linger[=MS] after the batch work finishes, keep serving for MS
//                       milliseconds so a scraper can collect the final
//                       totals; bare --serve-linger or =0 lingers until
//                       GET /quitquitquit
//   --trace-out=FILE    record nested spans into the flight recorder and
//                       write them as Chrome trace-event JSON to FILE at
//                       exit (load in Perfetto / chrome://tracing)
//
// Parsing is prefix-based so each tool keeps its own argv loop; the helper
// returns true when it consumed the argument. The export plane and the
// recorder are both off unless their flag appears, so tools pay nothing for
// carrying this surface.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "obs/export_plane.hpp"
#include "obs/trace.hpp"

namespace iotls::tools {

struct ObsCli {
  bool serve = false;
  std::uint16_t port = 0;
  bool linger = false;
  std::uint64_t linger_ms = 0;  // 0 = until /quitquitquit
  std::string trace_out;

  std::unique_ptr<obs::ExportPlane> plane;

  /// Try to consume `arg`; returns true if it was one of ours. `*bad` is set
  /// (with a message on stderr) when the flag was ours but malformed.
  bool parse(const char* arg, bool* bad) {
    *bad = false;
    if (std::strncmp(arg, "--serve=", 8) == 0) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(arg + 8, &end, 10);
      if (end == arg + 8 || *end != '\0' || n > 65535) {
        std::fprintf(stderr, "--serve= wants a port in [0,65535], got '%s'\n",
                     arg + 8);
        *bad = true;
        return true;
      }
      serve = true;
      port = static_cast<std::uint16_t>(n);
      return true;
    }
    if (std::strcmp(arg, "--serve-linger") == 0) {
      linger = true;
      linger_ms = 0;
      return true;
    }
    if (std::strncmp(arg, "--serve-linger=", 15) == 0) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(arg + 15, &end, 10);
      if (end == arg + 15 || *end != '\0') {
        std::fprintf(stderr,
                     "--serve-linger= wants milliseconds, got '%s'\n", arg + 15);
        *bad = true;
        return true;
      }
      linger = true;
      linger_ms = n;
      return true;
    }
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
      if (trace_out.empty()) {
        std::fprintf(stderr, "--trace-out= wants a file path\n");
        *bad = true;
      }
      return true;
    }
    return false;
  }

  /// Start whatever the flags asked for. Call once, before the batch work.
  /// Returns false (with a message on stderr) when the server cannot bind.
  bool start() {
    if (!trace_out.empty()) obs::recorder().enable();
    if (serve) {
      plane = std::make_unique<obs::ExportPlane>();
      std::string error;
      if (!plane->start(port, &error)) {
        std::fprintf(stderr, "obs: cannot serve: %s\n", error.c_str());
        plane.reset();
        return false;
      }
      std::fprintf(stderr, "obs: serving on 127.0.0.1:%u\n",
                   static_cast<unsigned>(plane->port()));
    }
    return true;
  }

  /// Linger (if asked), stop the server, and write the trace file.
  /// Call once, after the batch work and after any --stats output so a
  /// lingering scrape sees the same final totals the stats report printed.
  void finish() {
    if (plane && linger) {
      std::fprintf(stderr, "obs: work done; lingering%s (GET /quitquitquit to exit)\n",
                   linger_ms ? "" : " until stopped");
      plane->wait_for_shutdown(linger_ms);
    }
    if (plane) {
      plane->stop();
      plane.reset();
    }
    if (!trace_out.empty()) {
      std::string error;
      if (!obs::recorder().write_chrome_trace(trace_out, &error)) {
        std::fprintf(stderr, "obs: cannot write trace: %s\n", error.c_str());
      } else if (obs::recorder().dropped() > 0) {
        std::fprintf(stderr,
                     "obs: trace written to %s (%llu events dropped at capacity)\n",
                     trace_out.c_str(),
                     static_cast<unsigned long long>(obs::recorder().dropped()));
      }
    }
  }
};

}  // namespace iotls::tools

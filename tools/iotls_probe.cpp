// iotls_probe — probe IoT servers and validate their certificate chains.
//
// Usage:
//   iotls_probe [--all] [--jobs=N] [--stats[=json]] [--retries=N]
//               [--backoff-ms=N] [--retry-budget=N] [--breaker=N]
//               [--fault-spec=SPEC] [sni ...]
//
// Runs against the repository's simulated internet (this reproduction has
// no live sockets): performs a full TLS exchange from each of the three
// vantage points, validates the served chain against the Mozilla+Apple+
// Microsoft store union, and reports issuer, validity, CT presence, OCSP
// stapling and geo consistency — the §5 pipeline for arbitrary names.
//
// Resilience: `--retries=N` allows N total attempts per probe with
// exponential backoff (`--backoff-ms` base, deterministic jitter) on
// transient failures only; `--retry-budget` caps a survey's extra attempts;
// `--breaker=N` quarantines an SNI after N consecutive connectivity
// failures (0 disables). `--fault-spec` layers deterministic network chaos
// over the simulation, e.g.
//   --fault-spec=seed=7,timeout=0.2,reset=0.05,outage=frankfurt:10:25
// so the retry/breaker machinery can be exercised and measured end to end.
//
// Parallelism: `--jobs=N` fans the survey across N worker threads (0 =
// hardware concurrency, default 1 = sequential). SNIs are sharded by name
// and merged in input order, so the report is byte-identical to --jobs=1
// (see README "Parallelism" for the two documented caveats).
//
// Fingerprinting: `--battery[=K]` switches from certificate harvesting to
// active stack fingerprinting — the first K probes (default: all) of the
// normative ClientHello battery (docs/FINGERPRINTING.md) against each SNI,
// canonicalized and hashed into one digest per (SNI, vantage, family).
// `--family=v4|v6|dual` picks the address families probed (dual requires
// --battery; without it, v4/v6 steers the certificate prober). The battery
// honours --retries/--backoff-ms/--breaker/--fault-spec; --retry-budget is
// deliberately ignored (budget exhaustion is walk-order-dependent and
// would break the --jobs byte-identity contract).
//
// Observability: set IOTLS_LOG_LEVEL=debug for structured per-probe logs on
// stderr. `--stats` appends per-stage timings and the metric registry to
// the report; `--stats=json` replaces the report with one JSON document
// (counters, histograms, stage spans) on stdout. `--serve=PORT` exposes the
// live export plane (/metrics, /stats, /healthz, /readyz, /trace) during the
// survey — with `--serve-linger[=MS]` it stays up after the run so a scraper
// can collect final totals; `--trace-out=FILE` writes a Chrome trace-event
// JSON of the survey's nested spans (open it in Perfetto).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "devicesim/scenario.hpp"
#include "net/fault.hpp"
#include "net/prober.hpp"
#include "net/stack_fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/obs_report.hpp"
#include "obs_cli.hpp"
#include "util/dates.hpp"
#include "util/error.hpp"
#include "x509/validation.hpp"

using namespace iotls;

namespace {

enum class StatsMode { kOff, kText, kJson };

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: iotls_probe [--all] [--jobs=N] [--stats[=json]] [--retries=N]\n"
               "                   [--backoff-ms=N] [--retry-budget=N] [--breaker=N]\n"
               "                   [--fault-spec=SPEC] [--battery[=K]]\n"
               "                   [--family=v4|v6|dual] [--serve=PORT]\n"
               "                   [--serve-linger[=MS]] [--trace-out=FILE] [sni ...]\n");
}

/// Parse the numeric value of a `--flag=N` argument; exits on garbage.
std::uint64_t flag_u64(const char* arg, const char* flag) {
  const char* value = arg + std::strlen(flag);
  char* end = nullptr;
  unsigned long long n = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "%s wants a non-negative integer, got '%s'\n", flag, value);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(n);
}

bool has_prefix(const char* arg, const char* prefix) {
  return std::strncmp(arg, prefix, std::strlen(prefix)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool all = false;
  StatsMode stats = StatsMode::kOff;
  net::RetryPolicy retry;
  net::BreakerConfig breaker;
  net::FaultSpec fault_spec;
  bool faults = false;
  bool battery = false;
  std::size_t battery_k = 0;  // 0 = the full standard battery
  std::string family_flag = "v4";
  int jobs = 1;
  tools::ObsCli obs_cli;
  std::vector<std::string> snis;
  for (int i = 1; i < argc; ++i) {
    bool bad = false;
    if (obs_cli.parse(argv[i], &bad)) {
      if (bad) return 2;
    }
    else if (std::strcmp(argv[i], "--all") == 0) all = true;
    else if (has_prefix(argv[i], "--jobs=")) {
      jobs = static_cast<int>(flag_u64(argv[i], "--jobs="));
    }
    else if (std::strcmp(argv[i], "--stats") == 0) stats = StatsMode::kText;
    else if (std::strcmp(argv[i], "--stats=json") == 0) stats = StatsMode::kJson;
    else if (has_prefix(argv[i], "--retries=")) {
      retry.max_attempts = 1 + static_cast<int>(flag_u64(argv[i], "--retries="));
    } else if (has_prefix(argv[i], "--backoff-ms=")) {
      retry.base_backoff_ms = flag_u64(argv[i], "--backoff-ms=");
    } else if (has_prefix(argv[i], "--retry-budget=")) {
      retry.retry_budget = flag_u64(argv[i], "--retry-budget=");
    } else if (has_prefix(argv[i], "--breaker=")) {
      breaker.failure_threshold =
          static_cast<int>(flag_u64(argv[i], "--breaker="));
    } else if (std::strcmp(argv[i], "--battery") == 0) {
      battery = true;
    } else if (has_prefix(argv[i], "--battery=")) {
      battery = true;
      battery_k = static_cast<std::size_t>(flag_u64(argv[i], "--battery="));
      if (battery_k == 0) {
        std::fprintf(stderr, "--battery wants K >= 1 probes\n");
        return 2;
      }
    } else if (has_prefix(argv[i], "--family=")) {
      family_flag = argv[i] + std::strlen("--family=");
      if (family_flag != "v4" && family_flag != "v6" && family_flag != "dual") {
        std::fprintf(stderr, "--family wants v4|v6|dual, got '%s'\n",
                     family_flag.c_str());
        return 2;
      }
    } else if (has_prefix(argv[i], "--fault-spec=")) {
      try {
        fault_spec = net::FaultSpec::parse(argv[i] + std::strlen("--fault-spec="));
        faults = true;
      } catch (const ParseError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(stderr);
      return 2;
    }
    else snis.emplace_back(argv[i]);
  }
  if (!all && snis.empty()) {
    usage(stderr);
    std::fprintf(stderr, "example: iotls_probe appboot.netflix.com a2.tuyaus.com\n");
    return 2;
  }
  if (family_flag == "dual" && !battery) {
    std::fprintf(stderr, "--family=dual requires --battery (the certificate "
                         "prober walks one family per run)\n");
    return 2;
  }
  if (!obs_cli.start()) return 2;

  auto universe = devicesim::ServerUniverse::standard();
  devicesim::SimWorld world = devicesim::build_world(universe);

  // Optionally decorate the simulated internet with seeded chaos.
  net::VirtualClock clock;
  std::unique_ptr<net::FaultInjector> injector;
  const net::Internet* internet = &world.internet;
  if (faults) {
    injector = std::make_unique<net::FaultInjector>(world.internet, fault_spec,
                                                    &clock);
    internet = injector.get();
  }
  const std::int64_t today = days(2022, 4, 15);
  const bool quiet = stats == StatsMode::kJson;  // stdout carries JSON only

  if (all) {
    for (const devicesim::ServerSpec& spec : universe.specs()) {
      snis.push_back(spec.fqdn);
    }
  }

  if (battery) {
    net::StackFingerprinter fingerprinter(*internet);
    const std::vector<net::ProbeSpec>& standard =
        net::StackFingerprinter::standard_battery();
    if (battery_k > 0 && battery_k < standard.size()) {
      fingerprinter.set_battery(std::vector<net::ProbeSpec>(
          standard.begin(),
          standard.begin() + static_cast<std::ptrdiff_t>(battery_k)));
    }
    std::vector<net::AddressFamily> families = {net::AddressFamily::kIPv4};
    if (family_flag == "v6") families = {net::AddressFamily::kIPv6};
    if (family_flag == "dual") {
      families = {net::AddressFamily::kIPv4, net::AddressFamily::kIPv6};
    }
    fingerprinter.set_families(families);
    fingerprinter.set_retry_policy(retry);
    fingerprinter.set_breaker(breaker);
    fingerprinter.set_clock(&clock);
    fingerprinter.set_jobs(jobs);

    net::StackSurvey survey = fingerprinter.survey(snis);
    std::size_t divergent = 0;
    for (const net::ServerStackResult& result : survey.results) {
      std::string line;
      const net::StackFingerprint* v4 = nullptr;
      const net::StackFingerprint* v6 = nullptr;
      for (net::AddressFamily family : families) {
        const net::StackFingerprint* fp =
            result.at(net::VantagePoint::kNewYork, family);
        if (family == net::AddressFamily::kIPv4) v4 = fp;
        else v6 = fp;
        line += "  " + net::family_name(family) + "=";
        line += (fp != nullptr && fp->answered) ? fp->digest : "unanswered";
      }
      bool diverged = v4 != nullptr && v6 != nullptr && v4->answered &&
                      v6->answered && v4->digest != v6->digest;
      if (diverged) ++divergent;
      if (!quiet) {
        std::printf("%-40s%s%s\n", result.sni.c_str(), line.c_str(),
                    diverged ? "  [DIVERGENT]" : "");
      }
    }
    if (!quiet) {
      const net::StackSurveySummary& s = survey.summary;
      std::printf("\nbattery: %zu probes x %zu famil%s x %zu vantages over "
                  "%zu SNIs\n",
                  fingerprinter.battery().size(), families.size(),
                  families.size() == 1 ? "y" : "ies", net::kAllVantagePoints.size(),
                  s.snis);
      std::printf("summary: %llu probes (%llu answered, %llu skipped), "
                  "%llu attempts (%llu retries)%s\n",
                  static_cast<unsigned long long>(s.probes),
                  static_cast<unsigned long long>(s.answered_probes),
                  static_cast<unsigned long long>(s.skipped_probes),
                  static_cast<unsigned long long>(s.attempts),
                  static_cast<unsigned long long>(s.retries),
                  family_flag == "dual"
                      ? (", " + std::to_string(divergent) + " dual-stack divergent").c_str()
                      : "");
      if (faults) {
        net::FaultInjector::Stats fs = injector->stats();
        std::printf("faults injected: %llu timeouts, %llu resets, "
                    "%llu truncated, %llu garbled over %llu connects\n",
                    static_cast<unsigned long long>(fs.timeouts),
                    static_cast<unsigned long long>(fs.resets),
                    static_cast<unsigned long long>(fs.truncated),
                    static_cast<unsigned long long>(fs.garbled),
                    static_cast<unsigned long long>(fs.connects));
      }
    }
    if (stats == StatsMode::kText) {
      std::printf("\n%s", report::stats_text(obs::metrics(), obs::tracer()).c_str());
    } else if (stats == StatsMode::kJson) {
      std::printf("%s\n", report::stats_json(obs::metrics(), obs::tracer()).c_str());
    }
    std::fflush(stdout);
    obs_cli.finish();
    return 0;
  }

  net::TlsProber prober(*internet);
  prober.set_retry_policy(retry);
  prober.set_breaker(breaker);
  prober.set_clock(&clock);
  prober.set_jobs(jobs);
  if (family_flag == "v6") prober.set_family(net::AddressFamily::kIPv6);
  // Shared across the walk: chains sharing intermediates verify each
  // signature edge once (x509.cache.{hit,miss} in --stats shows the ratio).
  x509::ValidationCache vcache;

  net::SurveyReport survey = prober.survey_report(snis);

  std::size_t ok = 0, failed = 0, unreachable = 0;
  for (const net::MultiVantageResult& multi : survey.results) {
    const std::string& sni = multi.sni;
    const net::ProbeResult& ny = multi.by_vantage.at(net::VantagePoint::kNewYork);
    if (!ny.reachable) {
      if (!quiet) {
        if (ny.quarantined) {
          std::printf("%-40s QUARANTINED (circuit breaker open)\n", sni.c_str());
        } else {
          std::printf("%-40s UNREACHABLE (%s; %s, %d attempt%s)\n", sni.c_str(),
                      ny.error_string().c_str(),
                      ny.transient ? "transient" : "persistent", ny.attempts,
                      ny.attempts == 1 ? "" : "s");
        }
      }
      ++unreachable;
      continue;
    }
    if (ny.chain.empty()) {
      // Reachable but served nothing we could decode into a chain (possible
      // under garbled-response fault injection).
      if (!quiet) std::printf("%-40s EMPTY CHAIN\n", sni.c_str());
      ++failed;
      continue;
    }
    x509::ValidationResult v = [&] {
      auto span = obs::tracer().span("chain.validate");
      span.add_items();
      auto result = x509::validate_chain(ny.chain, sni, world.trust, world.keys,
                                         today, &vcache);
      if (!x509::chain_trusted(result.status)) {
        span.fail(x509::chain_status_slug(result.status));
      }
      return result;
    }();
    const x509::Certificate& leaf = ny.chain.front();
    bool in_ct = world.ct_index.logged(leaf.fingerprint());
    {
      auto span = obs::tracer().span("report");
      span.add_items();
      if (!quiet) {
        std::printf("%-40s %s\n", sni.c_str(),
                    x509::chain_status_name(v.status).c_str());
        std::printf("    issuer: %-30s validity: %lld days%s%s\n",
                    leaf.issuer.organization.c_str(),
                    static_cast<long long>(leaf.validity_days()),
                    v.expired ? "  [EXPIRED]" : "",
                    v.hostname_ok ? "" : "  [CN MISMATCH]");
        std::printf("    CT: %s   OCSP staple: %s   geo-consistent: %s   chain len: %zu\n",
                    in_ct ? "logged" : "NOT logged",
                    ny.stapled.has_value() ? "yes" : "no",
                    multi.consistent_across_vantages() ? "yes" : "NO",
                    ny.chain.size());
      }
    }
    if (x509::chain_trusted(v.status) && !v.expired && v.hostname_ok) ++ok;
    else ++failed;
  }
  if (!quiet) {
    std::printf("\n%zu clean, %zu problematic, %zu unreachable\n", ok, failed,
                unreachable);
    std::printf("degradation: %s\n", survey.summary.to_string().c_str());
    if (faults) {
      net::FaultInjector::Stats fs = injector->stats();
      std::printf("faults injected: %llu timeouts, %llu resets, %llu truncated, "
                  "%llu garbled, %llu outage hits over %llu connects "
                  "(+%llu virtual ms latency)\n",
                  static_cast<unsigned long long>(fs.timeouts),
                  static_cast<unsigned long long>(fs.resets),
                  static_cast<unsigned long long>(fs.truncated),
                  static_cast<unsigned long long>(fs.garbled),
                  static_cast<unsigned long long>(fs.outage_hits),
                  static_cast<unsigned long long>(fs.connects),
                  static_cast<unsigned long long>(fs.latency_ms_total));
    }
  }

  if (stats == StatsMode::kText) {
    std::printf("\n%s", report::stats_text(obs::metrics(), obs::tracer()).c_str());
  } else if (stats == StatsMode::kJson) {
    std::printf("%s\n", report::stats_json(obs::metrics(), obs::tracer()).c_str());
  }
  // Flush before lingering so a supervisor that scrapes-then-quits sees the
  // stats document even when stdout is a pipe.
  std::fflush(stdout);
  obs_cli.finish();
  return failed > 0 ? 1 : 0;
}

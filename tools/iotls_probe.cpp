// iotls_probe — probe IoT servers and validate their certificate chains.
//
// Usage:
//   iotls_probe [--all] [--stats[=json]] [sni ...]
//
// Runs against the repository's simulated internet (this reproduction has
// no live sockets): performs a full TLS exchange from each of the three
// vantage points, validates the served chain against the Mozilla+Apple+
// Microsoft store union, and reports issuer, validity, CT presence, OCSP
// stapling and geo consistency — the §5 pipeline for arbitrary names.
//
// Observability: set IOTLS_LOG_LEVEL=debug for structured per-probe logs on
// stderr. `--stats` appends per-stage timings and the metric registry to
// the report; `--stats=json` replaces the report with one JSON document
// (counters, histograms, stage spans) on stdout.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "devicesim/scenario.hpp"
#include "net/prober.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/obs_report.hpp"
#include "util/dates.hpp"
#include "x509/validation.hpp"

using namespace iotls;

namespace {

enum class StatsMode { kOff, kText, kJson };

}  // namespace

int main(int argc, char** argv) {
  bool all = false;
  StatsMode stats = StatsMode::kOff;
  std::vector<std::string> snis;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all") == 0) all = true;
    else if (std::strcmp(argv[i], "--stats") == 0) stats = StatsMode::kText;
    else if (std::strcmp(argv[i], "--stats=json") == 0) stats = StatsMode::kJson;
    else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::fprintf(stderr, "usage: iotls_probe [--all] [--stats[=json]] [sni ...]\n");
      return 2;
    }
    else snis.emplace_back(argv[i]);
  }
  if (!all && snis.empty()) {
    std::fprintf(stderr, "usage: iotls_probe [--all] [--stats[=json]] [sni ...]\n");
    std::fprintf(stderr, "example: iotls_probe appboot.netflix.com a2.tuyaus.com\n");
    return 2;
  }

  auto universe = devicesim::ServerUniverse::standard();
  devicesim::SimWorld world = devicesim::build_world(universe);
  net::TlsProber prober(world.internet);
  const std::int64_t today = days(2022, 4, 15);
  const bool quiet = stats == StatsMode::kJson;  // stdout carries JSON only

  if (all) {
    for (const devicesim::ServerSpec& spec : universe.specs()) {
      snis.push_back(spec.fqdn);
    }
  }

  std::size_t ok = 0, failed = 0, unreachable = 0;
  for (const std::string& sni : snis) {
    net::MultiVantageResult multi = [&] {
      auto span = obs::tracer().span("probe");
      span.add_items();
      auto result = prober.probe_all_vantages(sni);
      bool anywhere = false;
      for (const auto& [vantage, probe] : result.by_vantage) {
        if (probe.reachable) anywhere = true;
      }
      if (!anywhere) {
        span.fail(net::probe_error_name(
            result.by_vantage.at(net::VantagePoint::kNewYork).error));
      }
      return result;
    }();
    const net::ProbeResult& ny = multi.by_vantage.at(net::VantagePoint::kNewYork);
    if (!ny.reachable) {
      if (!quiet) {
        std::printf("%-40s UNREACHABLE (%s)\n", sni.c_str(),
                    ny.error_string().c_str());
      }
      ++unreachable;
      continue;
    }
    x509::ValidationResult v = [&] {
      auto span = obs::tracer().span("chain.validate");
      span.add_items();
      auto result = x509::validate_chain(ny.chain, sni, world.trust, world.keys, today);
      if (!x509::chain_trusted(result.status)) {
        span.fail(x509::chain_status_slug(result.status));
      }
      return result;
    }();
    const x509::Certificate& leaf = ny.chain.front();
    bool in_ct = world.ct_index.logged(leaf.fingerprint());
    {
      auto span = obs::tracer().span("report");
      span.add_items();
      if (!quiet) {
        std::printf("%-40s %s\n", sni.c_str(),
                    x509::chain_status_name(v.status).c_str());
        std::printf("    issuer: %-30s validity: %lld days%s%s\n",
                    leaf.issuer.organization.c_str(),
                    static_cast<long long>(leaf.validity_days()),
                    v.expired ? "  [EXPIRED]" : "",
                    v.hostname_ok ? "" : "  [CN MISMATCH]");
        std::printf("    CT: %s   OCSP staple: %s   geo-consistent: %s   chain len: %zu\n",
                    in_ct ? "logged" : "NOT logged",
                    ny.stapled.has_value() ? "yes" : "no",
                    multi.consistent_across_vantages() ? "yes" : "NO",
                    ny.chain.size());
      }
    }
    if (x509::chain_trusted(v.status) && !v.expired && v.hostname_ok) ++ok;
    else ++failed;
  }
  if (!quiet) {
    std::printf("\n%zu clean, %zu problematic, %zu unreachable\n", ok, failed,
                unreachable);
  }

  if (stats == StatsMode::kText) {
    std::printf("\n%s", report::stats_text(obs::metrics(), obs::tracer()).c_str());
  } else if (stats == StatsMode::kJson) {
    std::printf("%s\n", report::stats_json(obs::metrics(), obs::tracer()).c_str());
  }
  return failed > 0 ? 1 : 0;
}

// iotlsd — the resident incremental survey daemon (ROADMAP item 1).
//
// Ingests fleet ClientHello events epoch by epoch, folding each epoch into
// the client dataset (and, with --certs, the server-side certificate
// dataset) *incrementally*: epoch N's state is byte-identical to a cold
// batch run over the first N epochs' events. Results are served live over
// the obs export plane.
//
// Usage:
//   iotlsd [--port=N] [--jobs=N] [--epochs=K] [--follow] [--certs]
//          [--min-users=N] [--fault-spec=SPEC] events.csv devices.csv
//   iotlsd --snapshot=FILE [--port=N] [--jobs=N] [--epochs=K] [--certs]
//          [--min-users=N] [--fault-spec=SPEC]
//   iotlsd --export-fleet=PREFIX [--users=N] [--wire]
//          [--synthetic=DEVICES[,EVENTS_PER_DEVICE]] [--snapshot=FILE]
//
// Modes:
//   * replay (default): slice events.csv into K epochs (--epochs, default 3),
//     fold them all, then keep serving until GET /quitquitquit. With
//     --snapshot=FILE the epochs come from a columnar .iotlsnap container
//     instead (devices included), each epoch materialized from the mapped
//     columns only when folded;
//   * follow (--follow): tail events.csv for appended rows, folding each
//     poll's batch as one epoch, until /quitquitquit;
//   * export (--export-fleet=PREFIX): generate a fleet and write
//     PREFIX-events.csv / PREFIX-devices.csv, then exit (the fixture
//     generator for the CI daemon phase). --synthetic=D[,E] swaps in the
//     scale-test generator (D devices, E events each — millions build in
//     seconds); --snapshot=FILE additionally writes the fleet as a
//     .iotlsnap container.
//
// Endpoints: /metrics /stats /healthz /readyz /trace /quitquitquit from the
// export plane, plus /epoch (ingest progress: epoch counter, event count,
// capture-day watermark) and /report/<name> (see src/stream/reports.hpp;
// docs/DAEMON.md has the full reference).
//
// The bound port is announced on stderr as
//   iotlsd: serving on 127.0.0.1:PORT
// so scripts can scrape an ephemeral --port=0.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "devicesim/export.hpp"
#include "devicesim/fleet.hpp"
#include "devicesim/scenario.hpp"
#include "fleetio/snapshot.hpp"
#include "stream/daemon.hpp"
#include "stream/source.hpp"
#include "util/error.hpp"

using namespace iotls;

namespace {

constexpr const char* kUsage =
    "usage: iotlsd [--port=N] [--jobs=N] [--epochs=K] [--follow] [--certs]\n"
    "              [--min-users=N] [--fault-spec=SPEC] events.csv devices.csv\n"
    "       iotlsd --snapshot=FILE [--port=N] [--jobs=N] [--epochs=K]\n"
    "              [--certs] [--min-users=N] [--fault-spec=SPEC]\n"
    "       iotlsd --export-fleet=PREFIX [--users=N] [--wire]\n"
    "              [--synthetic=DEVICES[,EVENTS_PER_DEVICE]] [--snapshot=FILE]\n";

std::string slurp(const char* path) {
  std::ifstream f(path);
  if (!f) throw ParseError(std::string("cannot open ") + path);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

bool parse_uint(const char* text, unsigned long long* out) {
  char* end = nullptr;
  *out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

int export_fleet(const std::string& prefix, int users, bool wire,
                 const std::optional<devicesim::SyntheticFleetSpec>& synthetic,
                 const std::string& snapshot_out) {
  devicesim::FleetDataset fleet;
  if (synthetic.has_value()) {
    fleet = devicesim::generate_synthetic_fleet(*synthetic);
  } else {
    devicesim::FleetConfig cfg;
    if (users > 0) cfg.users = users;
    auto corpus = corpus::LibraryCorpus::standard();
    auto universe = devicesim::ServerUniverse::standard();
    fleet = devicesim::generate_fleet(cfg, corpus, universe);
  }

  devicesim::ExportOptions opts;
  opts.include_wire = wire;
  std::string events_csv = devicesim::export_events_csv(fleet, opts);
  std::string devices_csv = devicesim::export_devices_csv(fleet, opts);
  struct Out {
    std::string path;
    const std::string* body;
  };
  for (const Out& out : {Out{prefix + "-events.csv", &events_csv},
                         Out{prefix + "-devices.csv", &devices_csv}}) {
    std::ofstream f(out.path, std::ios::binary | std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", out.path.c_str());
      return 1;
    }
    f << *out.body;
    std::fprintf(stderr, "iotlsd: wrote %s\n", out.path.c_str());
  }

  if (!snapshot_out.empty()) {
    // The snapshot must hold exactly the dataset importing the CSVs yields
    // (pseudonymized ids, canonical wire bytes), not the raw generator
    // fleet — otherwise reports from the two inputs would diverge.
    try {
      fleetio::write_snapshot(
          devicesim::import_events_csv(events_csv, devices_csv), snapshot_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot write %s: %s\n", snapshot_out.c_str(),
                   e.what());
      return 1;
    }
    std::fprintf(stderr, "iotlsd: wrote %s\n", snapshot_out.c_str());
  }
  std::fprintf(stderr, "iotlsd: fleet: %zu devices, %zu events\n",
               fleet.devices.size(), fleet.events.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned long long port = 0;
  unsigned long long epochs = 3;
  int users = 0;
  bool follow = false;
  bool wire = false;
  std::string export_prefix;
  std::string snapshot_path;
  std::optional<devicesim::SyntheticFleetSpec> synthetic;
  stream::IngestConfig config;
  std::vector<const char*> paths;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    unsigned long long n = 0;
    if (std::strncmp(arg, "--port=", 7) == 0 && parse_uint(arg + 7, &n) &&
        n <= 65535) {
      port = n;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0 && parse_uint(arg + 7, &n)) {
      config.jobs = static_cast<int>(n);
    } else if (std::strncmp(arg, "--epochs=", 9) == 0 &&
               parse_uint(arg + 9, &n) && n >= 1) {
      epochs = n;
    } else if (std::strncmp(arg, "--min-users=", 12) == 0 &&
               parse_uint(arg + 12, &n)) {
      config.min_users = static_cast<std::size_t>(n);
    } else if (std::strncmp(arg, "--users=", 8) == 0 && parse_uint(arg + 8, &n)) {
      users = static_cast<int>(n);
    } else if (std::strcmp(arg, "--follow") == 0) {
      follow = true;
    } else if (std::strcmp(arg, "--certs") == 0) {
      config.certs = true;
    } else if (std::strcmp(arg, "--wire") == 0) {
      wire = true;
    } else if (std::strncmp(arg, "--fault-spec=", 13) == 0) {
      try {
        config.fault = net::FaultSpec::parse(arg + 13);
      } catch (const ParseError& e) {
        std::fprintf(stderr, "--fault-spec: %s\n", e.what());
        return 2;
      }
    } else if (std::strncmp(arg, "--export-fleet=", 15) == 0) {
      export_prefix = arg + 15;
    } else if (std::strncmp(arg, "--snapshot=", 11) == 0) {
      snapshot_path = arg + 11;
    } else if (std::strncmp(arg, "--synthetic=", 12) == 0) {
      devicesim::SyntheticFleetSpec spec;
      const char* rest = arg + 12;
      const char* comma = std::strchr(rest, ',');
      unsigned long long d = 0, e = 0;
      bool ok;
      if (comma != nullptr) {
        std::string head(rest, comma);
        ok = parse_uint(head.c_str(), &d) && parse_uint(comma + 1, &e) &&
             d >= 1 && e >= 1;
        if (ok) spec.events_per_device = static_cast<std::size_t>(e);
      } else {
        ok = parse_uint(rest, &d) && d >= 1;
      }
      if (!ok) {
        std::fprintf(stderr,
                     "--synthetic= wants DEVICES[,EVENTS_PER_DEVICE]\n%s",
                     kUsage);
        return 2;
      }
      spec.devices = static_cast<std::size_t>(d);
      synthetic = spec;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n%s", arg, kUsage);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (!export_prefix.empty()) {
    if (!paths.empty()) {
      std::fprintf(stderr, "--export-fleet takes no CSV arguments\n%s", kUsage);
      return 2;
    }
    return export_fleet(export_prefix, users, wire, synthetic, snapshot_path);
  }
  bool snapshot_input = !snapshot_path.empty();
  if (paths.size() != (snapshot_input ? 0u : 2u) ||
      (snapshot_input && follow)) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  std::vector<devicesim::Device> devices;
  devicesim::FleetDataset fleet;
  std::optional<fleetio::SnapshotReader> snap;
  try {
    if (snapshot_input) {
      snap = fleetio::SnapshotReader::open(snapshot_path);
      devices = snap->devices();
    } else if (follow) {
      // Tail mode reads events incrementally; only devices load up front.
      devices = devicesim::parse_devices_csv(slurp(paths[1]));
    } else {
      fleet = devicesim::import_events_csv(slurp(paths[0]), slurp(paths[1]));
      devices = fleet.devices;
    }
  } catch (const ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  stream::SurveyDaemon daemon(std::move(devices), config);
  std::string error;
  if (!daemon.start(static_cast<std::uint16_t>(port), &error)) {
    std::fprintf(stderr, "iotlsd: cannot serve: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "iotlsd: serving on 127.0.0.1:%u\n",
               static_cast<unsigned>(daemon.port()));
  std::fflush(stderr);

  if (follow) {
    stream::TailSource tail(paths[0]);
    // Poll between folds; wait_for_shutdown doubles as the poll interval.
    while (!daemon.wait_for_shutdown(50)) daemon.step(tail);
  } else {
    std::size_t folded;
    if (snapshot_input) {
      stream::SnapshotSource source = stream::SnapshotSource::with_epochs(
          std::move(*snap), static_cast<std::size_t>(epochs), config.jobs);
      folded = daemon.drain(source);
    } else {
      stream::ReplaySource source(std::move(fleet.events),
                                  static_cast<std::size_t>(epochs));
      folded = daemon.drain(source);
    }
    std::fprintf(stderr, "iotlsd: folded %zu epochs (%llu events); waiting\n",
                 folded,
                 static_cast<unsigned long long>(
                     daemon.ingest().events_ingested()));
    std::fflush(stderr);
    daemon.wait_for_shutdown();
  }

  daemon.stop();
  return 0;
}
